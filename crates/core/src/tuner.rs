//! SCF threshold tuning (paper §8.1.3).
//!
//! > "We initialize all thresholds such that no Keys are filtered (i.e.
//! > filter ratio = 1). We iteratively increase the thresholds for KV heads
//! > with the lowest filtering ratios. This process continues until the
//! > perplexity exceeds a predefined threshold (5 %), at which point we
//! > record the filter ratio from the prior iteration."
//!
//! The tuner is generic over a *quality probe* — any closure that evaluates a
//! threshold table and returns a quality figure (lower is better; perplexity
//! for model runs, attention-output error for trace runs) plus the filter
//! statistics of the evaluation.

use crate::scf::ThresholdTable;
use crate::stats::FilterStats;

/// Result of one probe evaluation.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Quality figure; **lower is better** (e.g. perplexity).
    pub quality: f64,
    /// Access statistics of the evaluation (per-head ratios drive the
    /// head-selection heuristic).
    pub stats: FilterStats,
}

/// Tuner hyperparameters.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Allowed relative quality degradation vs. the unfiltered baseline
    /// (the paper uses 5 %).
    pub quality_budget: f64,
    /// Threshold increment per accepted step.
    pub step: u32,
    /// Hard cap on thresholds (the head dimension: concordance can never
    /// exceed it).
    pub max_threshold: u32,
    /// Safety cap on tuning rounds.
    pub max_rounds: usize,
}

impl TunerConfig {
    /// Paper-style defaults for a given head dimension.
    pub fn for_head_dim(head_dim: usize) -> Self {
        Self {
            quality_budget: 0.05,
            step: (head_dim / 16).max(1) as u32,
            max_threshold: head_dim as u32,
            max_rounds: 256,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The tuned thresholds (the last accepted iterate).
    pub thresholds: ThresholdTable,
    /// Quality of the unfiltered baseline.
    pub baseline_quality: f64,
    /// Quality at the tuned thresholds.
    pub final_quality: f64,
    /// Filter statistics at the tuned thresholds.
    pub final_stats: FilterStats,
    /// Number of probe evaluations performed.
    pub probes: usize,
}

impl TuneOutcome {
    /// Relative quality degradation of the tuned configuration.
    pub fn quality_increase(&self) -> f64 {
        self.final_quality / self.baseline_quality - 1.0
    }
}

/// Runs the paper's greedy threshold-tuning loop.
///
/// `probe` evaluates a candidate table; it is called once for the all-zeros
/// baseline and once per candidate step.
///
/// # Panics
///
/// Panics if `layers * kv_heads == 0`.
pub fn tune_thresholds(
    layers: usize,
    kv_heads: usize,
    cfg: &TunerConfig,
    mut probe: impl FnMut(&ThresholdTable) -> ProbeResult,
) -> TuneOutcome {
    assert!(layers * kv_heads > 0, "no heads to tune");
    let mut thresholds = ThresholdTable::zeros(layers, kv_heads);
    let baseline = probe(&thresholds);
    let budget = baseline.quality * (1.0 + cfg.quality_budget);

    let mut frozen = vec![false; layers * kv_heads];
    let mut best = baseline.clone();
    let mut probes = 1;

    for _ in 0..cfg.max_rounds {
        // Pick the unfrozen head with the lowest filter ratio.
        let candidate = best
            .stats
            .per_head
            .iter()
            .enumerate()
            .filter(|(i, _)| !frozen[*i])
            .filter(|(i, _)| thresholds.get(i / kv_heads, i % kv_heads) < cfg.max_threshold)
            .min_by(|a, b| a.1.filter_ratio().total_cmp(&b.1.filter_ratio()));
        let Some((head_idx, _)) = candidate else {
            break; // every head frozen or capped
        };
        let (layer, head) = (head_idx / kv_heads, head_idx % kv_heads);
        let old = thresholds.get(layer, head);
        let proposed = (old + cfg.step).min(cfg.max_threshold);
        thresholds.set(layer, head, proposed);

        let result = probe(&thresholds);
        probes += 1;
        if result.quality <= budget {
            best = result;
        } else {
            // Revert and freeze: this head cannot be raised further.
            thresholds.set(layer, head, old);
            frozen[head_idx] = true;
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }

    TuneOutcome {
        thresholds,
        baseline_quality: baseline.quality,
        final_quality: best.quality,
        final_stats: best.stats,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PerHeadStats;

    /// A synthetic probe: quality degrades quadratically with each head's
    /// threshold, filter ratio improves linearly. Head 1 is "cheap" (quality
    /// barely degrades), head 0 is "expensive".
    fn synthetic_probe(costs: Vec<f64>) -> impl FnMut(&ThresholdTable) -> ProbeResult {
        move |t: &ThresholdTable| {
            let mut quality = 100.0;
            let mut per_head = Vec::new();
            for ((_, _), th) in t.iter() {
                let i = per_head.len();
                quality += costs[i] * (th as f64).powi(2);
                let survivors = (1000.0 / (1.0 + th as f64)) as u64;
                per_head.push(PerHeadStats {
                    region: 1000,
                    scored: survivors,
                    retrieved: 10,
                });
            }
            let stats = FilterStats {
                queries: 1,
                dense_kv: per_head.len() as u64 * 1000,
                window_accessed: 0,
                sparse_region: per_head.iter().map(|h| h.region).sum(),
                scored: per_head.iter().map(|h| h.scored).sum(),
                retrieved: per_head.iter().map(|h| h.retrieved).sum(),
                per_head,
            };
            ProbeResult { quality, stats }
        }
    }

    #[test]
    fn tuner_raises_cheap_heads_more() {
        let cfg = TunerConfig {
            quality_budget: 0.05,
            step: 1,
            max_threshold: 32,
            max_rounds: 200,
        };
        let outcome = tune_thresholds(1, 2, &cfg, synthetic_probe(vec![1.0, 0.01]));
        let expensive = outcome.thresholds.get(0, 0);
        let cheap = outcome.thresholds.get(0, 1);
        assert!(
            cheap > expensive,
            "cheap head should end with the higher threshold ({cheap} vs {expensive})"
        );
        assert!(outcome.quality_increase() <= 0.05 + 1e-9);
    }

    #[test]
    fn tuner_respects_quality_budget() {
        let cfg = TunerConfig {
            quality_budget: 0.02,
            step: 2,
            max_threshold: 64,
            max_rounds: 500,
        };
        let outcome = tune_thresholds(2, 2, &cfg, synthetic_probe(vec![0.3, 0.2, 0.1, 0.05]));
        assert!(outcome.quality_increase() <= 0.02 + 1e-9);
        assert!(outcome.final_quality >= outcome.baseline_quality);
    }

    #[test]
    fn zero_budget_keeps_thresholds_at_zero_for_costly_heads() {
        let cfg = TunerConfig {
            quality_budget: 0.0,
            step: 1,
            max_threshold: 8,
            max_rounds: 50,
        };
        let outcome = tune_thresholds(1, 1, &cfg, synthetic_probe(vec![10.0]));
        assert_eq!(outcome.thresholds.get(0, 0), 0);
        assert_eq!(outcome.final_quality, outcome.baseline_quality);
    }

    #[test]
    fn max_threshold_caps_progress() {
        // Free quality: tuner would raise forever without the cap.
        let cfg = TunerConfig {
            quality_budget: 10.0,
            step: 3,
            max_threshold: 7,
            max_rounds: 100,
        };
        let outcome = tune_thresholds(1, 1, &cfg, synthetic_probe(vec![0.0]));
        assert_eq!(outcome.thresholds.get(0, 0), 7);
    }
}
