//! Iterative Quantization (ITQ) — paper §5.4, following Gong & Lazebnik.
//!
//! SCF assumes sign bits are informative, i.e. vectors spread around the
//! origin. Real K/Q representations are strongly clustered with a large DC
//! component, so raw sign bits waste dimensions. ITQ learns an orthogonal
//! rotation `R` minimizing the binary quantization error `‖sign(X·R) − X·R‖²`
//! by alternating:
//!
//! 1. `B = sign(X·R)` (binary codes for fixed rotation),
//! 2. `R = U·Vᵀ` from the SVD of `Xᵀ·B` (orthogonal Procrustes).
//!
//! One rotation is trained per KV head on a short (≈1K token) trace of
//! post-RoPE keys and queries; at inference it is applied to queries and keys
//! *after* positional embedding, because RoPE breaks the invariance that
//! would allow fusing it into the projection weights. Crucially, applying
//! the same rotation to both Q and K leaves dot products unchanged — only
//! the sign bits (and therefore SCF) are affected.

use longsight_tensor::{linalg, Matrix, SignArena, SignBits, SimRng};

/// A learned orthogonal rotation for one KV head.
#[derive(Debug, Clone)]
pub struct ItqRotation {
    r: Matrix,
}

/// Training hyperparameters for [`ItqRotation::train`].
#[derive(Debug, Clone)]
pub struct ItqConfig {
    /// Number of alternating iterations (50 in the original paper's setup).
    pub iterations: usize,
    /// RNG seed for the initial random rotation.
    pub seed: u64,
}

impl Default for ItqConfig {
    fn default() -> Self {
        Self {
            iterations: 40,
            seed: 0x17_0517,
        }
    }
}

impl ItqRotation {
    /// The identity rotation (ITQ disabled).
    pub fn identity(dim: usize) -> Self {
        Self {
            r: Matrix::identity(dim),
        }
    }

    /// Trains a rotation on `data` (rows are training vectors).
    ///
    /// Following Gong & Lazebnik, the training data is **mean-centered**
    /// before the alternating minimization: on raw (uncentered) data the
    /// objective is minimized by aligning the data mean with a binary corner,
    /// which *concentrates* sign bits instead of balancing them. The learned
    /// rotation is then applied *without* centering at inference (a pure
    /// matrix multiply, preserving Q·K dot products) — the centered-trained
    /// rotation spreads the variance (and the DC lands incoherently across
    /// dimensions), which is exactly the sign-balance repair the paper
    /// describes (§5.4).
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows.
    pub fn train(data: &Matrix, cfg: &ItqConfig) -> Self {
        assert!(data.rows() > 0, "ITQ needs at least one training vector");
        let d = data.cols();
        let means = data.col_means();
        let centered = Matrix::from_fn(data.rows(), d, |r, c| data.get(r, c) - means[c]);
        let data = &centered;
        let mut rng = SimRng::seed_from(cfg.seed);
        let mut r = linalg::random_orthogonal(d, &mut rng);
        for _ in 0..cfg.iterations {
            // B = sign(X R), entries in {-1, +1}.
            let xr = data.matmul(&r);
            let b = Matrix::from_fn(
                xr.rows(),
                d,
                |i, j| {
                    if xr.get(i, j) < 0.0 {
                        -1.0
                    } else {
                        1.0
                    }
                },
            );
            // Procrustes: R = U Vᵀ of M = Xᵀ B.
            let m = data.transpose().matmul(&b);
            r = linalg::procrustes_rotation(&m);
        }
        Self { r }
    }

    /// Dimensionality the rotation operates on.
    pub fn dim(&self) -> usize {
        self.r.rows()
    }

    /// The rotation matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.r
    }

    /// Applies the rotation to a vector (`v · R`).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn apply(&self, v: &[f32]) -> Vec<f32> {
        self.r.vecmat(v)
    }

    /// Rotates and extracts sign bits in one step.
    pub fn signs(&self, v: &[f32]) -> SignBits {
        SignBits::from_slice(&self.apply(v))
    }

    /// Rotates `v` and packs its sign bits straight onto the tail of a
    /// [`SignArena`] — the append path of the packed sign store, with no
    /// per-key [`SignBits`] allocation.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim` or the arena's dimension differs.
    pub fn signs_into(&self, v: &[f32], arena: &mut SignArena) {
        arena.push_signs_of(&self.apply(v));
    }

    /// Mean binary quantization error `‖sign(XR) − XR‖² / n` over `data` —
    /// the objective ITQ minimizes. Exposed for diagnostics and tests.
    pub fn quantization_error(&self, data: &Matrix) -> f64 {
        let xr = data.matmul(&self.r);
        let mut err = 0.0f64;
        for i in 0..xr.rows() {
            for j in 0..xr.cols() {
                let v = xr.get(i, j);
                let b = if v < 0.0 { -1.0 } else { 1.0 };
                err += ((v - b) as f64).powi(2);
            }
        }
        err / xr.rows() as f64
    }
}

/// Per-`(layer, kv_head)` rotations.
#[derive(Debug, Clone)]
pub struct RotationTable {
    kv_heads: usize,
    rotations: Vec<ItqRotation>,
}

impl RotationTable {
    /// Builds a table of identity rotations (ITQ off).
    pub fn identity(layers: usize, kv_heads: usize, dim: usize) -> Self {
        Self {
            kv_heads,
            rotations: vec![ItqRotation::identity(dim); layers * kv_heads],
        }
    }

    /// Builds a table from a function producing each head's rotation.
    pub fn from_fn(
        layers: usize,
        kv_heads: usize,
        mut f: impl FnMut(usize, usize) -> ItqRotation,
    ) -> Self {
        let mut rotations = Vec::with_capacity(layers * kv_heads);
        for l in 0..layers {
            for h in 0..kv_heads {
                rotations.push(f(l, h));
            }
        }
        Self {
            kv_heads,
            rotations,
        }
    }

    /// The rotation for `(layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, layer: usize, kv_head: usize) -> &ItqRotation {
        &self.rotations[layer * self.kv_heads + kv_head]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_tensor::vecops;

    /// Clustered anisotropic data: a DC offset plus a Gaussian mixture.
    fn clustered_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = SimRng::seed_from(seed);
        let dc: Vec<f32> = (0..d).map(|i| if i < d / 4 { 2.0 } else { 0.0 }).collect();
        let centers: Vec<Vec<f32>> = (0..8).map(|_| rng.normal_vec(d)).collect();
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let c = &centers[rng.below(centers.len())];
            let row: Vec<f32> = (0..d)
                .map(|j| dc[j] + c[j] + 0.5 * rng.normal() as f32)
                .collect();
            rows.push(row);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn rotation_is_orthogonal() {
        let data = clustered_data(256, 16, 1);
        let rot = ItqRotation::train(&data, &ItqConfig::default());
        assert!(linalg::orthogonality_error(rot.matrix()) < 1e-3);
    }

    #[test]
    fn rotation_preserves_dot_products() {
        let data = clustered_data(128, 16, 2);
        let rot = ItqRotation::train(&data, &ItqConfig::default());
        let mut rng = SimRng::seed_from(3);
        let q = rng.normal_vec(16);
        let k = rng.normal_vec(16);
        let before = vecops::dot(&q, &k);
        let after = vecops::dot(&rot.apply(&q), &rot.apply(&k));
        assert!((before - after).abs() < 1e-3);
    }

    #[test]
    fn training_reduces_quantization_error() {
        let data = clustered_data(512, 16, 4);
        let identity = ItqRotation::identity(16);
        let trained = ItqRotation::train(&data, &ItqConfig::default());
        let before = identity.quantization_error(&data);
        let after = trained.quantization_error(&data);
        assert!(
            after < before,
            "ITQ should reduce quantization error: {before} -> {after}"
        );
    }

    #[test]
    fn itq_balances_sign_bits_on_dc_shifted_data() {
        // All vectors share a large positive offset in the first quarter of
        // dims: raw sign bits there are constant (useless). ITQ trains on
        // centered data, so the balance it promises is of the centered,
        // rotated codes — measure exactly that pipeline. (Rotating the
        // uncentered data keeps the DC component and guarantees nothing.)
        let data = clustered_data(512, 16, 5);
        let imbalance = |m: &Matrix| -> f64 {
            let mut worst: f64 = 0.0;
            for j in 0..m.cols() {
                let neg = (0..m.rows()).filter(|&i| m.get(i, j) < 0.0).count();
                let frac = neg as f64 / m.rows() as f64;
                worst = worst.max((frac - 0.5).abs());
            }
            worst
        };
        let raw = imbalance(&data);
        assert!(
            raw > 0.49,
            "test premise: raw data has a dead sign dimension"
        );
        let rot = ItqRotation::train(&data, &ItqConfig::default());
        let means = data.col_means();
        let centered = Matrix::from_fn(data.rows(), data.cols(), |r, c| data.get(r, c) - means[c]);
        let fixed = imbalance(&centered.matmul(rot.matrix()));
        assert!(
            fixed < 0.2,
            "centered+rotated codes must have balanced signs ({raw} -> {fixed})"
        );
    }

    #[test]
    fn identity_rotation_is_noop() {
        let rot = ItqRotation::identity(8);
        let v = vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0];
        assert_eq!(rot.apply(&v), v);
    }

    #[test]
    fn rotation_table_indexing() {
        let t = RotationTable::from_fn(2, 3, |l, h| {
            if (l, h) == (1, 2) {
                ItqRotation::identity(4)
            } else {
                ItqRotation::identity(8)
            }
        });
        assert_eq!(t.get(1, 2).dim(), 4);
        assert_eq!(t.get(0, 0).dim(), 8);
    }
}
