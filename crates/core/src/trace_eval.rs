//! Trace-based quality evaluation for long contexts.
//!
//! Full-model perplexity runs are quadratic in context length; beyond ~16K
//! tokens the quality experiments instead run the *identical* retrieval
//! pipeline over generated Q/K/V traces ([`longsight_model::tracegen`]) and
//! measure how faithfully hybrid attention approximates dense attention:
//!
//! * **top-k recall** — fraction of the exact highest-scoring non-window keys
//!   that the SCF→score→rank pipeline retrieves,
//! * **ground-truth recall** — fraction of the trace's engineered relevant
//!   positions present in the final candidate set,
//! * **output error** — relative L2 distance between the hybrid and dense
//!   attention outputs.
//!
//! `DESIGN.md` documents this as the substitution for perplexity at contexts
//! the forward pass cannot reach.

use crate::hybrid::HybridConfig;
use crate::itq::ItqRotation;
use crate::scf::{filter_block_packed, PFU_BLOCK_KEYS};
use crate::stats::FilterStats;
use longsight_model::tracegen::HeadTrace;
use longsight_model::{attend_over_indices, HeadKv};
use longsight_tensor::{vecops, SignArena, TopK};

/// Quality of the hybrid pipeline on one head trace.
#[derive(Debug, Clone)]
pub struct TraceQuality {
    /// Recall of the exact top-k (by true score) within the sparse region.
    pub topk_recall: f64,
    /// Recall of the trace's ground-truth relevant positions in the full
    /// candidate set (window + sinks + retrieved).
    pub ground_truth_recall: f64,
    /// Mean relative L2 error of hybrid vs. dense attention output.
    pub output_rel_err: f64,
    /// Access statistics (single head).
    pub stats: FilterStats,
}

/// Runs the hybrid pipeline over every query probe of `trace`.
///
/// `rotation` is applied to queries and keys before sign extraction (pass
/// [`ItqRotation::identity`] for raw SCF); `threshold` is this head's SCF
/// threshold.
///
/// # Panics
///
/// Panics if the trace is empty or the rotation dimension mismatches.
pub fn evaluate_trace(
    trace: &HeadTrace,
    rotation: &ItqRotation,
    config: &HybridConfig,
    threshold: u32,
) -> TraceQuality {
    assert!(!trace.is_empty(), "empty trace");
    let n = trace.len();
    let d = trace.keys.dim();
    assert_eq!(rotation.dim(), d, "rotation dimension mismatch");

    // Precompute rotated sign bits for all keys into one packed arena (the
    // Key Sign Object region the PFUs scan).
    let mut key_signs = SignArena::new(d);
    for k in trace.keys.iter() {
        rotation.signs_into(k, &mut key_signs);
    }
    let key_signs = &key_signs;

    // Build a HeadKv view for the shared attention kernel.
    let mut history = HeadKv::new(d);
    for i in 0..n {
        history.push(trace.keys.get(i), trace.values.get(i));
    }

    let window_start = n.saturating_sub(config.window);
    let sinks_end = config.sinks.min(window_start);
    let region = window_start.saturating_sub(sinks_end);
    let scale = 1.0 / (d as f32).sqrt();

    let mut stats = FilterStats::new(1, 1);
    let mut topk_hits = 0usize;
    let mut topk_total = 0usize;
    let mut gt_hits = 0usize;
    let mut gt_total = 0usize;
    let mut err_sum = 0.0f64;

    let all: Vec<usize> = (0..n).collect();
    // Each probe is an independent evaluation of the same read-only trace
    // state, so the probe loop runs on the deterministic parallel map; the
    // accumulators are folded serially in probe order below, which keeps the
    // floating-point `err_sum` reduction order — and therefore every metric —
    // bit-identical to the serial loop at any thread count.
    let per_probe = longsight_exec::deterministic_map(&trace.queries, |_, probe| {
        let q = &probe.q;
        let q_signs = rotation.signs(q);

        // Sparse pipeline over the region: one PFU epoch per 128-key block
        // off the packed arena, then every key is scored for the exact
        // (true_top) side while survivors also feed the hybrid heap —
        // identical push order to the per-key scan.
        let mut top = TopK::new(config.top_k);
        let mut scored = 0u64;
        let mut true_top = TopK::new(config.top_k);
        let mut block = sinks_end;
        while block < window_start {
            let block_end = (block + PFU_BLOCK_KEYS).min(window_start);
            let bitmap = filter_block_packed(&q_signs, key_signs, block..block_end, threshold);
            for i in block..block_end {
                let s = vecops::dot(q, history.keys().get(i));
                true_top.push(s, i);
                if bitmap >> (i - block) & 1 == 1 {
                    scored += 1;
                    top.push(s, i);
                }
            }
            block = block_end;
        }
        let retrieved: Vec<usize> = top.into_sorted_vec().iter().map(|s| s.index).collect();
        let exact: Vec<usize> = true_top.into_sorted_vec().iter().map(|s| s.index).collect();
        let probe_topk_hits = exact.iter().filter(|i| retrieved.contains(i)).count();
        let probe_topk_total = exact.len();

        let mut candidates: Vec<usize> = (0..sinks_end).collect();
        candidates.extend(retrieved.iter().copied());
        candidates.extend(window_start..n);
        candidates.sort_unstable();

        let probe_gt_hits = probe
            .relevant
            .iter()
            .filter(|i| candidates.binary_search(i).is_ok())
            .count();

        let hybrid_out = attend_over_indices(q, &history, &candidates, scale);
        let dense_out = attend_over_indices(q, &history, &all, scale);
        let diff: f32 = hybrid_out
            .iter()
            .zip(&dense_out)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let denom = vecops::l2_norm(&dense_out).max(1e-12);
        let rel_err = (diff / denom) as f64;

        (
            probe_topk_hits,
            probe_topk_total,
            probe_gt_hits,
            probe.relevant.len(),
            rel_err,
            scored,
            retrieved.len() as u64,
        )
    });
    for (p_topk_hits, p_topk_total, p_gt_hits, p_gt_total, rel_err, scored, retrieved) in per_probe
    {
        topk_hits += p_topk_hits;
        topk_total += p_topk_total;
        gt_hits += p_gt_hits;
        gt_total += p_gt_total;
        err_sum += rel_err;

        stats.queries += 1;
        stats.dense_kv += n as u64;
        stats.window_accessed += (n - window_start) as u64 + sinks_end as u64;
        stats.sparse_region += region as u64;
        stats.scored += scored;
        stats.retrieved += retrieved;
        let ph = &mut stats.per_head[0];
        ph.region += region as u64;
        ph.scored += scored;
        ph.retrieved += retrieved;
    }

    let probes = trace.queries.len().max(1) as f64;
    TraceQuality {
        topk_recall: if topk_total == 0 {
            1.0
        } else {
            topk_hits as f64 / topk_total as f64
        },
        ground_truth_recall: if gt_total == 0 {
            1.0
        } else {
            gt_hits as f64 / gt_total as f64
        },
        output_rel_err: err_sum / probes,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_model::tracegen::{generate_head_trace, TraceConfig};
    use longsight_tensor::SimRng;

    fn trace() -> HeadTrace {
        let mut rng = SimRng::seed_from(42);
        generate_head_trace(&TraceConfig::llama_like(64, 4096), &mut rng)
    }

    #[test]
    fn zero_threshold_full_k_gives_perfect_topk_recall() {
        let t = trace();
        let q = evaluate_trace(
            &t,
            &ItqRotation::identity(64),
            &HybridConfig {
                window: 1024,
                sinks: 16,
                top_k: 1024,
            },
            0,
        );
        assert!(
            (q.topk_recall - 1.0).abs() < 1e-12,
            "recall {}",
            q.topk_recall
        );
        assert!(q.output_rel_err < 0.2, "output error {}", q.output_rel_err);
    }

    #[test]
    fn impossible_threshold_kills_recall() {
        let t = trace();
        let q = evaluate_trace(
            &t,
            &ItqRotation::identity(64),
            &HybridConfig {
                window: 256,
                sinks: 16,
                top_k: 512,
            },
            65, // > head_dim: nothing passes
        );
        assert_eq!(q.stats.scored, 0);
        assert!(q.topk_recall < 1e-9);
    }

    #[test]
    fn higher_threshold_means_higher_filter_ratio() {
        let t = trace();
        let cfg = HybridConfig {
            window: 512,
            sinks: 16,
            top_k: 256,
        };
        let rot = ItqRotation::identity(64);
        let low = evaluate_trace(&t, &rot, &cfg, 20);
        let high = evaluate_trace(&t, &rot, &cfg, 40);
        assert!(
            high.stats.filter_ratio_nonwindow() >= low.stats.filter_ratio_nonwindow(),
            "raising the threshold must not lower the filter ratio"
        );
    }

    #[test]
    fn window_contributes_to_ground_truth_recall() {
        let t = trace();
        // Even with the sparse path disabled (impossible threshold), the
        // window catches the recent share of relevant positions.
        let q = evaluate_trace(
            &t,
            &ItqRotation::identity(64),
            &HybridConfig {
                window: 1024,
                sinks: 16,
                top_k: 64,
            },
            65,
        );
        assert!(q.ground_truth_recall > 0.0);
        assert!(q.ground_truth_recall < 1.0);
    }
}
