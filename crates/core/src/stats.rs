//! Filter-ratio accounting (paper Figs 3 & 4 metrics).

/// Per-KV-head access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerHeadStats {
    /// Keys eligible for filtering (the non-window, non-sink region).
    pub region: u64,
    /// Keys that survived SCF and were scored at full precision.
    pub scored: u64,
    /// Value vectors retrieved after top-k.
    pub retrieved: u64,
}

impl PerHeadStats {
    /// Non-window filter ratio for this head:
    /// `region / (scored + retrieved)`. Returns `f64::INFINITY` when nothing
    /// was accessed and `1.0` when the region is empty.
    pub fn filter_ratio(&self) -> f64 {
        if self.region == 0 {
            return 1.0;
        }
        let accessed = self.scored + self.retrieved;
        if accessed == 0 {
            f64::INFINITY
        } else {
            self.region as f64 / accessed as f64
        }
    }
}

/// Cumulative access statistics for a hybrid-attention run.
///
/// The paper's *KV cache filter ratio* (Fig 3) is "the ratio of the total
/// number of KV entries accessed during the dense attention baseline to the
/// number of Keys accessed after filtering and k Keys and Values retrieved
/// after Top-k selection", computed over the non-window region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterStats {
    /// Number of per-query-head attention computations.
    pub queries: u64,
    /// KV entries a dense baseline would have accessed.
    pub dense_kv: u64,
    /// Keys accessed densely through the window and sinks.
    pub window_accessed: u64,
    /// Sum over heads of the eligible (non-window) region sizes.
    pub sparse_region: u64,
    /// Keys that survived SCF and were scored.
    pub scored: u64,
    /// Value vectors retrieved after top-k.
    pub retrieved: u64,
    /// Per-`(layer, kv_head)` breakdown, indexed `layer * kv_heads + head`.
    pub per_head: Vec<PerHeadStats>,
}

impl FilterStats {
    /// Creates zeroed statistics for `layers × kv_heads` heads.
    pub fn new(layers: usize, kv_heads: usize) -> Self {
        Self {
            per_head: vec![PerHeadStats::default(); layers * kv_heads],
            ..Self::default()
        }
    }

    /// The Fig 3 metric: non-window KV-cache filter ratio.
    pub fn filter_ratio_nonwindow(&self) -> f64 {
        if self.sparse_region == 0 {
            return 1.0;
        }
        let accessed = self.scored + self.retrieved;
        if accessed == 0 {
            f64::INFINITY
        } else {
            self.sparse_region as f64 / accessed as f64
        }
    }

    /// Overall filter ratio including window/sink accesses in the
    /// denominator (dense baseline in the numerator).
    pub fn filter_ratio_overall(&self) -> f64 {
        let accessed = self.window_accessed + self.scored + self.retrieved;
        if accessed == 0 {
            return 1.0;
        }
        self.dense_kv as f64 / accessed as f64
    }

    /// Achieved sparsity: fraction of dense KV accesses avoided,
    /// `1 − accessed/dense` (the metric DynaX reports, §5.4).
    pub fn sparsity(&self) -> f64 {
        if self.dense_kv == 0 {
            return 0.0;
        }
        let accessed = self.window_accessed + self.scored + self.retrieved;
        1.0 - accessed as f64 / self.dense_kv as f64
    }

    /// Average fraction of the sparse region surviving SCF (before top-k).
    pub fn survival_rate(&self) -> f64 {
        if self.sparse_region == 0 {
            return 1.0;
        }
        self.scored as f64 / self.sparse_region as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_ratio_of_untouched_stats_is_one() {
        let s = FilterStats::new(2, 4);
        assert_eq!(s.filter_ratio_nonwindow(), 1.0);
        assert_eq!(s.filter_ratio_overall(), 1.0);
        assert_eq!(s.per_head.len(), 8);
    }

    #[test]
    fn filter_ratio_matches_hand_computation() {
        let s = FilterStats {
            queries: 10,
            dense_kv: 10_000,
            window_accessed: 1_000,
            sparse_region: 9_000,
            scored: 600,
            retrieved: 300,
            per_head: vec![],
        };
        assert!((s.filter_ratio_nonwindow() - 10.0).abs() < 1e-12);
        assert!((s.filter_ratio_overall() - 10_000.0 / 1_900.0).abs() < 1e-12);
        assert!((s.sparsity() - 0.81).abs() < 1e-12);
        assert!((s.survival_rate() - 600.0 / 9000.0).abs() < 1e-12);
    }

    #[test]
    fn per_head_filter_ratio_edge_cases() {
        let h = PerHeadStats {
            region: 0,
            scored: 0,
            retrieved: 0,
        };
        assert_eq!(h.filter_ratio(), 1.0);
        let h = PerHeadStats {
            region: 100,
            scored: 0,
            retrieved: 0,
        };
        assert_eq!(h.filter_ratio(), f64::INFINITY);
        let h = PerHeadStats {
            region: 100,
            scored: 5,
            retrieved: 5,
        };
        assert_eq!(h.filter_ratio(), 10.0);
    }
}
