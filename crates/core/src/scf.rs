//! Sign-Concordance Filtering (SCF) — paper §5.1.
//!
//! SCF retains a key `K` for a query `Q` iff the number of dimensions whose
//! sign bits match exceeds a threshold:
//!
//! ```text
//! SCF(Q, K, TH) = TH <= D - Σ (SQ[i] XOR SK[i])
//! ```
//!
//! Thresholds are assigned **per KV head** (the paper found per-query-head
//! thresholds unstable to tune, §5.1). Filtering is applied per token, in
//! blocks of 128 keys — matching the PFU hardware granularity (§7.1).

use longsight_tensor::{SignArena, SignBits};

/// The PFU filtering block size: each epoch filters 128 keys per bank.
pub const PFU_BLOCK_KEYS: usize = 128;

/// Maximum number of queries a PFU batch can carry (one GQA group, §7.1).
pub const PFU_MAX_QUERIES: usize = 16;

/// Per-`(layer, kv_head)` SCF thresholds.
///
/// A threshold of `0` disables filtering for that head (every key's
/// concordance is `>= 0`), which is the tuner's starting point (§8.1.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdTable {
    layers: usize,
    kv_heads: usize,
    values: Vec<u32>,
}

impl ThresholdTable {
    /// Creates a table with every threshold set to `initial`.
    pub fn uniform(layers: usize, kv_heads: usize, initial: u32) -> Self {
        Self {
            layers,
            kv_heads,
            values: vec![initial; layers * kv_heads],
        }
    }

    /// Creates a table that filters nothing (all thresholds zero).
    pub fn zeros(layers: usize, kv_heads: usize) -> Self {
        Self::uniform(layers, kv_heads, 0)
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of KV heads per layer.
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Threshold for `(layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, layer: usize, kv_head: usize) -> u32 {
        assert!(
            layer < self.layers && kv_head < self.kv_heads,
            "head out of range"
        );
        self.values[layer * self.kv_heads + kv_head]
    }

    /// Sets the threshold for `(layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, layer: usize, kv_head: usize, threshold: u32) {
        assert!(
            layer < self.layers && kv_head < self.kv_heads,
            "head out of range"
        );
        self.values[layer * self.kv_heads + kv_head] = threshold;
    }

    /// Iterates over `((layer, kv_head), threshold)`.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), u32)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &t)| ((i / self.kv_heads, i % self.kv_heads), t))
    }
}

/// Evaluates SCF for a single query/key pair.
///
/// # Panics
///
/// Panics if the sign vectors have different dimensions.
#[inline]
pub fn scf_pass(query: &SignBits, key: &SignBits, threshold: u32) -> bool {
    query.concordance(key) >= threshold
}

/// Filters a block of keys against one query, returning a bitmap.
///
/// This mirrors a single PFU epoch: up to [`PFU_BLOCK_KEYS`] keys evaluated
/// against a query, producing one bit per key (§7.4). Bit `i` of the result
/// corresponds to `keys[i]`.
pub fn filter_block(query: &SignBits, keys: &[SignBits], threshold: u32) -> u128 {
    assert!(
        keys.len() <= PFU_BLOCK_KEYS,
        "a PFU epoch filters at most {PFU_BLOCK_KEYS} keys, got {}",
        keys.len()
    );
    let mut bitmap = 0u128;
    for (i, k) in keys.iter().enumerate() {
        if scf_pass(query, k, threshold) {
            bitmap |= 1u128 << i;
        }
    }
    bitmap
}

/// Filters one 128-key PFU block straight off the packed lanes of a
/// [`SignArena`], returning a bitmap. Bit `b` of the result corresponds to
/// arena key `range.start + b`.
///
/// This is the bitplane kernel behind every scan hot path: where
/// [`filter_block`] chases one heap allocation per key, this streams the
/// key-major `u64` lanes of the whole block — the word-wide XOR/popcount the
/// PFU performs at internal DRAM bandwidth (§5.1, §7.4). The survivor set is
/// bit-identical to evaluating [`scf_pass`] per key: both compute
/// `dim − popcount(SQ ⊕ SK) >= threshold` over the same packed bits.
///
/// # Panics
///
/// Panics if the query/arena dimensions differ, the range exceeds the arena,
/// or the range spans more than [`PFU_BLOCK_KEYS`] keys.
pub fn filter_block_packed(
    query: &SignBits,
    arena: &SignArena,
    range: core::ops::Range<usize>,
    threshold: u32,
) -> u128 {
    assert_eq!(
        query.dim(),
        arena.dim(),
        "query/arena sign dimension mismatch"
    );
    assert!(
        range.len() <= PFU_BLOCK_KEYS,
        "a PFU epoch filters at most {PFU_BLOCK_KEYS} keys, got {}",
        range.len()
    );
    let dim = arena.dim() as u32;
    let keys = range.len();
    let wpk = arena.words_per_key();
    if wpk == 0 {
        // Zero-dimensional signs: concordance is 0, so only threshold 0 passes.
        return if threshold == 0 {
            if keys == 128 {
                u128::MAX
            } else {
                (1u128 << keys) - 1
            }
        } else {
            0
        };
    }
    let lanes = arena.lane_words(range);
    let qw = query.words();
    let mut bitmap = 0u128;
    match wpk {
        // The models this repo serves have head_dim 64 or 128, so the scan
        // spends its life in these two arms; the generic arm keeps odd
        // dimensions (tests, sweeps) correct.
        1 => {
            let q0 = qw[0];
            for (b, &w) in lanes.iter().enumerate() {
                if dim - (w ^ q0).count_ones() >= threshold {
                    bitmap |= 1u128 << b;
                }
            }
        }
        2 => {
            let (q0, q1) = (qw[0], qw[1]);
            for (b, lane) in lanes.chunks_exact(2).enumerate() {
                let hamming = (lane[0] ^ q0).count_ones() + (lane[1] ^ q1).count_ones();
                if dim - hamming >= threshold {
                    bitmap |= 1u128 << b;
                }
            }
        }
        _ => {
            for (b, lane) in lanes.chunks_exact(wpk).enumerate() {
                let hamming: u32 = lane.iter().zip(qw).map(|(w, q)| (w ^ q).count_ones()).sum();
                if dim - hamming >= threshold {
                    bitmap |= 1u128 << b;
                }
            }
        }
    }
    bitmap
}

/// Returns the indices (into `keys`) of keys passing SCF for `query`.
pub fn surviving_indices(query: &SignBits, keys: &[SignBits], threshold: u32) -> Vec<usize> {
    keys.iter()
        .enumerate()
        .filter(|(_, k)| scf_pass(query, k, threshold))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signs_of(v: &[f32]) -> SignBits {
        SignBits::from_slice(v)
    }

    #[test]
    fn threshold_zero_passes_everything() {
        let q = signs_of(&[1.0, -1.0, 1.0, -1.0]);
        let k = signs_of(&[-1.0, 1.0, -1.0, 1.0]); // zero concordance
        assert!(scf_pass(&q, &k, 0));
        assert!(!scf_pass(&q, &k, 1));
    }

    #[test]
    fn threshold_d_requires_exact_sign_match() {
        let q = signs_of(&[1.0, -1.0, 1.0, -1.0]);
        assert!(scf_pass(&q, &q, 4));
        let close = signs_of(&[1.0, -1.0, 1.0, 1.0]);
        assert!(!scf_pass(&q, &close, 4));
        assert!(scf_pass(&q, &close, 3));
    }

    #[test]
    fn filter_block_bitmap_matches_indices() {
        let q = signs_of(&[1.0, 1.0, -1.0, -1.0]);
        let keys: Vec<SignBits> = (0..10)
            .map(|i| {
                let v: Vec<f32> = (0..4)
                    .map(|d| if (i + d) % 3 == 0 { -1.0 } else { 1.0 })
                    .collect();
                signs_of(&v)
            })
            .collect();
        let bitmap = filter_block(&q, &keys, 3);
        let idx = surviving_indices(&q, &keys, 3);
        for i in 0..10 {
            assert_eq!(bitmap >> i & 1 == 1, idx.contains(&i));
        }
    }

    #[test]
    #[should_panic(expected = "at most 128 keys")]
    fn oversized_block_panics() {
        let q = signs_of(&[1.0]);
        let keys = vec![q.clone(); 129];
        let _ = filter_block(&q, &keys, 0);
    }

    #[test]
    fn packed_block_matches_per_key_block() {
        // 67 dims crosses a word boundary; 130 keys exercises a full 128-key
        // block plus a ragged tail.
        let dim = 67;
        let q: Vec<f32> = (0..dim).map(|d| ((d * 37) % 13) as f32 - 6.0).collect();
        let q_signs = signs_of(&q);
        let mut arena = longsight_tensor::SignArena::new(dim);
        let mut keys = Vec::new();
        for i in 0..130 {
            let v: Vec<f32> = (0..dim)
                .map(|d| ((i * 53 + d * 29) % 11) as f32 - 5.0)
                .collect();
            keys.push(signs_of(&v));
            arena.push_signs_of(&v);
        }
        for th in [0, 1, 30, 40, 67, 68] {
            let full = filter_block(&q_signs, &keys[..128], th);
            assert_eq!(filter_block_packed(&q_signs, &arena, 0..128, th), full);
            let tail = filter_block(&q_signs, &keys[128..], th);
            assert_eq!(filter_block_packed(&q_signs, &arena, 128..130, th), tail);
        }
    }

    #[test]
    fn packed_block_full_128_sets_high_bit() {
        let dim = 64;
        let q_signs = signs_of(&vec![1.0; dim]);
        let mut arena = longsight_tensor::SignArena::new(dim);
        for _ in 0..128 {
            arena.push_signs_of(&vec![1.0; dim]);
        }
        let bitmap = filter_block_packed(&q_signs, &arena, 0..128, dim as u32);
        assert_eq!(bitmap, u128::MAX);
    }

    #[test]
    #[should_panic(expected = "at most 128 keys")]
    fn oversized_packed_block_panics() {
        let q = signs_of(&[1.0]);
        let mut arena = longsight_tensor::SignArena::new(1);
        for _ in 0..129 {
            arena.push_signs_of(&[1.0]);
        }
        let _ = filter_block_packed(&q, &arena, 0..129, 0);
    }

    #[test]
    fn threshold_table_round_trips() {
        let mut t = ThresholdTable::zeros(4, 8);
        t.set(2, 5, 33);
        assert_eq!(t.get(2, 5), 33);
        assert_eq!(t.get(0, 0), 0);
        assert_eq!(t.iter().count(), 32);
        let raised = t.iter().filter(|&(_, th)| th > 0).count();
        assert_eq!(raised, 1);
    }

    #[test]
    fn higher_threshold_is_monotonically_stricter() {
        let q = signs_of(&[1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0]);
        let keys: Vec<SignBits> = (0..50)
            .map(|i| {
                let v: Vec<f32> = (0..8)
                    .map(|d| (((i * 13 + d * 7) % 5) as f32) - 2.0)
                    .collect();
                signs_of(&v)
            })
            .collect();
        let mut prev = usize::MAX;
        for th in 0..=8 {
            let n = surviving_indices(&q, &keys, th).len();
            assert!(n <= prev, "survivors must not grow with the threshold");
            prev = n;
        }
    }
}
