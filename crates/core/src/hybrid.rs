//! LongSight's hybrid dense–sparse attention backend (paper §5, §6).
//!
//! The GPU keeps a sliding window of the `W` most recent KV pairs (plus a few
//! attention-sink tokens) and attends to them densely; everything older lives
//! in the device-side store and is reached through the three-stage sparse
//! pipeline — SCF **filtering**, full-precision **scoring**, and top-*k*
//! **ranking**. A single softmax is applied over the combined dense + sparse
//! candidate set.
//!
//! [`LongSightBackend`] is the functional reference implementation (the
//! paper's `LongSightAttn` PyTorch module). The `longsight-drex` crate
//! implements the same retrieval through the simulated device; an integration
//! test pins them to identical results.

use crate::itq::RotationTable;
use crate::scf::{filter_block_packed, ThresholdTable, PFU_BLOCK_KEYS};
use crate::stats::FilterStats;
use longsight_model::{attend_over_indices, AttentionBackend, AttentionRequest};
use longsight_tensor::{vecops, SignArena, TopK};

/// Structural parameters of hybrid attention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridConfig {
    /// Dense sliding-window size `W` (the paper uses 1,024 by default).
    pub window: usize,
    /// Number of attention-sink tokens kept dense (16 in the paper, §8.1.3).
    pub sinks: usize,
    /// Top-k retrieval budget `k` (hardware maximum 1,024, §7.2).
    pub top_k: usize,
}

impl HybridConfig {
    /// The paper's default configuration: `W = 1024`, 16 sinks, `k = 1024`.
    pub fn paper_default() -> Self {
        Self {
            window: 1024,
            sinks: 16,
            top_k: 1024,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be positive (a query must see itself)".into());
        }
        if self.top_k > 1024 {
            return Err(format!(
                "top_k {} exceeds the hardware maximum of 1024",
                self.top_k
            ));
        }
        Ok(())
    }
}

/// The hybrid dense–sparse attention backend.
///
/// # Example
///
/// ```
/// use longsight_core::{HybridConfig, LongSightBackend, RotationTable, ThresholdTable};
/// use longsight_model::{Model, ModelConfig, ModelWeights, DenseBackend};
/// use longsight_tensor::SimRng;
///
/// let cfg = ModelConfig::tiny();
/// let mut rng = SimRng::seed_from(0);
/// let model = Model::new(ModelWeights::random(&cfg, &mut rng));
/// let mut backend = LongSightBackend::new(
///     HybridConfig { window: 8, sinks: 2, top_k: 16 },
///     ThresholdTable::zeros(cfg.layers, cfg.kv_heads),
///     RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
/// );
/// let mut cache = model.new_cache();
/// let logits = model.forward(1, 0, &mut cache, &mut backend);
/// assert_eq!(logits.len(), cfg.vocab);
/// ```
#[derive(Debug, Clone)]
pub struct LongSightBackend {
    config: HybridConfig,
    thresholds: ThresholdTable,
    rotations: RotationTable,
    /// One packed sign arena per `(layer, kv_head)` — the functional mirror
    /// of the Key Sign Object regions stored in DReX, maintained
    /// incrementally as keys leave the dense window.
    arenas: Vec<SignArena>,
    kv_heads: usize,
    stats: FilterStats,
}

impl LongSightBackend {
    /// Creates a backend.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the threshold/rotation
    /// tables disagree on the head grid.
    pub fn new(config: HybridConfig, thresholds: ThresholdTable, rotations: RotationTable) -> Self {
        config.validate().expect("invalid hybrid config");
        let layers = thresholds.layers();
        let kv_heads = thresholds.kv_heads();
        let arenas = (0..layers * kv_heads)
            .map(|i| SignArena::new(rotations.get(i / kv_heads, i % kv_heads).dim()))
            .collect();
        Self {
            config,
            thresholds,
            rotations,
            arenas,
            kv_heads,
            stats: FilterStats::new(layers, kv_heads),
        }
    }

    /// The hybrid configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Cumulative filter statistics (not cleared by [`AttentionBackend::reset`]).
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// Takes and resets the cumulative statistics.
    pub fn take_stats(&mut self) -> FilterStats {
        let layers = self.thresholds.layers();
        std::mem::replace(&mut self.stats, FilterStats::new(layers, self.kv_heads))
    }

    /// Splits the history `0..=position` into (sinks_end, window_start):
    /// `[0, sinks_end)` are dense sink tokens, `[window_start, position]` is
    /// the dense window, `[sinks_end, window_start)` is the sparse region.
    fn partition(&self, position: usize) -> (usize, usize) {
        let n = position + 1;
        let window_start = n.saturating_sub(self.config.window);
        let sinks_end = self.config.sinks.min(window_start);
        (sinks_end, window_start)
    }
}

impl AttentionBackend for LongSightBackend {
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
        let (sinks_end, window_start) = self.partition(req.position);
        let head_idx = req.layer * self.kv_heads + req.kv_head;
        let rotation = self.rotations.get(req.layer, req.kv_head);
        let threshold = self.thresholds.get(req.layer, req.kv_head);

        // Sync rotated sign bits for keys that have left the window — the
        // functional equivalent of flushing Key Sign Objects to DReX. The
        // arena append packs lanes in place; no per-key SignBits exists.
        let arena = &mut self.arenas[head_idx];
        let keys = req.history.keys();
        while arena.len() < window_start {
            let i = arena.len();
            rotation.signs_into(keys.get(i), arena);
        }

        let n = req.position + 1;
        let region = window_start - sinks_end;
        let top_k = self.config.top_k;
        let mut outputs = Vec::with_capacity(req.queries.len());
        for q in req.queries {
            // --- Sparse pipeline over [sinks_end, window_start) ---
            let mut candidates: Vec<usize> = (0..sinks_end).collect();
            let mut scored = 0u64;
            let mut retrieved = 0u64;
            if region > 0 && top_k > 0 {
                let q_signs = rotation.signs(q);
                let arena = &*arena;
                // The filter→score→rank scan is embarrassingly parallel over
                // fixed-size chunks of the sparse region (this mirrors the
                // per-partition PFU parallelism of the real device). Each
                // chunk keeps a bounded local top-k; merging the per-chunk
                // survivors through one final heap is *bit-identical* to the
                // serial scan, because a TopK's retained set is a pure
                // function of the pushed (score, index) multiset — any
                // global top-k element is necessarily in its own chunk's
                // local top-k, and scores are computed per element from the
                // same inputs either way.
                const SCAN_CHUNK: usize = 4096;
                let chunks = region.div_ceil(SCAN_CHUNK);
                let partials = longsight_exec::map_range(chunks, |c| {
                    let start = sinks_end + c * SCAN_CHUNK;
                    let end = (start + SCAN_CHUNK).min(window_start);
                    let mut top = TopK::new(top_k);
                    let mut chunk_scored = 0u64;
                    // Stage 1 runs one PFU epoch per 128-key block off the
                    // packed lanes; survivors are then scored in ascending
                    // index order, so stages 2–3 see the exact (score, index)
                    // sequence the per-key scan produced.
                    let mut block = start;
                    while block < end {
                        let block_end = (block + PFU_BLOCK_KEYS).min(end);
                        // Stage 1: in-memory filtering (PFU epoch).
                        let mut bitmap =
                            filter_block_packed(&q_signs, arena, block..block_end, threshold);
                        while bitmap != 0 {
                            let i = block + bitmap.trailing_zeros() as usize;
                            bitmap &= bitmap - 1;
                            // Stage 2: full-precision scoring (NMA).
                            chunk_scored += 1;
                            let s = vecops::dot(q, keys.get(i));
                            // Stage 3: ranking.
                            top.push(s, i);
                        }
                        block = block_end;
                    }
                    (top.into_sorted_vec(), chunk_scored)
                });
                let mut top = TopK::new(top_k);
                for (part, chunk_scored) in partials {
                    scored += chunk_scored;
                    for e in part {
                        top.push(e.score, e.index);
                    }
                }
                let selected = top.into_sorted_vec();
                retrieved = selected.len() as u64;
                candidates.extend(selected.iter().map(|s| s.index));
            } else if region > 0 {
                // k = 0: sparse phase disabled entirely.
            }
            // --- Dense window ---
            candidates.extend(window_start..n);
            candidates.sort_unstable();

            // Single softmax over the combined dense + sparse candidate set.
            outputs.push(attend_over_indices(q, req.history, &candidates, req.scale));

            // --- Accounting ---
            self.stats.queries += 1;
            self.stats.dense_kv += n as u64;
            self.stats.window_accessed += (n - window_start) as u64 + sinks_end as u64;
            self.stats.sparse_region += region as u64;
            self.stats.scored += scored;
            self.stats.retrieved += retrieved;
            let ph = &mut self.stats.per_head[head_idx];
            ph.region += region as u64;
            ph.scored += scored;
            ph.retrieved += retrieved;
        }
        outputs
    }

    fn label(&self) -> String {
        format!(
            "longsight(W={},sinks={},k={})",
            self.config.window, self.config.sinks, self.config.top_k
        )
    }

    fn reset(&mut self) {
        for a in &mut self.arenas {
            a.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itq::RotationTable;
    use longsight_model::{DenseBackend, HeadKv};
    use longsight_tensor::SimRng;

    fn mk_history(n: usize, dim: usize, rng: &mut SimRng) -> HeadKv {
        let mut h = HeadKv::new(dim);
        for _ in 0..n {
            let k = rng.normal_vec(dim);
            let v = rng.normal_vec(dim);
            h.push(&k, &v);
        }
        h
    }

    fn run_both(
        backend: &mut LongSightBackend,
        history: &HeadKv,
        q: &[f32],
        position: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let queries = vec![q.to_vec()];
        let req = AttentionRequest {
            layer: 0,
            kv_head: 0,
            position,
            queries: &queries,
            history,
            scale: 0.25,
        };
        let got = backend.attend(&req)[0].clone();
        let want = DenseBackend::new().attend(&req)[0].clone();
        (got, want)
    }

    #[test]
    fn equals_dense_when_unfiltered_and_k_covers_region() {
        let mut rng = SimRng::seed_from(1);
        let history = mk_history(64, 8, &mut rng);
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window: 4,
                sinks: 2,
                top_k: 64,
            },
            ThresholdTable::zeros(1, 1),
            RotationTable::identity(1, 1, 8),
        );
        let q = rng.normal_vec(8);
        let (got, want) = run_both(&mut backend, &history, &q, 63);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a - b).abs() < 1e-5,
                "hybrid must equal dense when nothing is pruned"
            );
        }
    }

    #[test]
    fn equals_dense_when_window_covers_history() {
        let mut rng = SimRng::seed_from(2);
        let history = mk_history(16, 8, &mut rng);
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window: 100,
                sinks: 0,
                top_k: 1,
            },
            ThresholdTable::uniform(1, 1, 8), // harsh threshold, but no region
            RotationTable::identity(1, 1, 8),
        );
        let q = rng.normal_vec(8);
        let (got, want) = run_both(&mut backend, &history, &q, 15);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5);
        }
        // Nothing entered the sparse pipeline.
        assert_eq!(backend.stats().sparse_region, 0);
        assert_eq!(backend.stats().filter_ratio_nonwindow(), 1.0);
    }

    #[test]
    fn top_k_limits_retrieved_values() {
        let mut rng = SimRng::seed_from(3);
        let history = mk_history(128, 8, &mut rng);
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window: 8,
                sinks: 2,
                top_k: 5,
            },
            ThresholdTable::zeros(1, 1),
            RotationTable::identity(1, 1, 8),
        );
        let q = rng.normal_vec(8);
        let _ = run_both(&mut backend, &history, &q, 127);
        let s = backend.stats();
        // All 118 region keys scored (threshold 0), 5 values retrieved.
        assert_eq!(s.sparse_region, 118);
        assert_eq!(s.scored, 118);
        assert_eq!(s.retrieved, 5);
        assert!(s.filter_ratio_nonwindow() > 118.0 / 124.0);
    }

    #[test]
    fn max_threshold_filters_everything_leaving_window_only() {
        let mut rng = SimRng::seed_from(4);
        let history = mk_history(64, 8, &mut rng);
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window: 4,
                sinks: 0,
                top_k: 16,
            },
            ThresholdTable::uniform(1, 1, 9), // > dim: impossible to pass
            RotationTable::identity(1, 1, 8),
        );
        let q = rng.normal_vec(8);
        let (got, _) = run_both(&mut backend, &history, &q, 63);
        assert!(got.iter().all(|x| x.is_finite()));
        assert_eq!(backend.stats().scored, 0);
        assert_eq!(backend.stats().retrieved, 0);
    }

    #[test]
    fn reset_clears_sign_caches_but_not_stats() {
        let mut rng = SimRng::seed_from(5);
        let history = mk_history(32, 8, &mut rng);
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window: 4,
                sinks: 0,
                top_k: 8,
            },
            ThresholdTable::zeros(1, 1),
            RotationTable::identity(1, 1, 8),
        );
        let q = rng.normal_vec(8);
        let _ = run_both(&mut backend, &history, &q, 31);
        let before = backend.stats().queries;
        backend.reset();
        assert_eq!(backend.stats().queries, before);
        // After reset a fresh (shorter) history must work.
        let short = mk_history(8, 8, &mut rng);
        let _ = run_both(&mut backend, &short, &q, 7);
    }

    #[test]
    #[should_panic(expected = "exceeds the hardware maximum")]
    fn k_beyond_hardware_limit_is_rejected() {
        let _ = LongSightBackend::new(
            HybridConfig {
                window: 4,
                sinks: 0,
                top_k: 2048,
            },
            ThresholdTable::zeros(1, 1),
            RotationTable::identity(1, 1, 8),
        );
    }
}
