//! Property-based tests for the LongSight algorithm crate.

use longsight_core::baseline_filters::blockwise_surviving_indices;
use longsight_core::quant_filter::QuantVec;
use longsight_core::{
    surviving_indices, HybridConfig, ItqConfig, ItqRotation, LongSightBackend, RotationTable,
    ThresholdTable,
};
use longsight_model::{AttentionBackend, AttentionRequest, DenseBackend, HeadKv};
use longsight_tensor::{vecops, Matrix, SignBits, SimRng};
use proptest::prelude::*;

fn history(n: usize, dim: usize, seed: u64) -> HeadKv {
    let mut rng = SimRng::seed_from(seed);
    let mut h = HeadKv::new(dim);
    for _ in 0..n {
        let k = rng.normal_vec(dim);
        let v = rng.normal_vec(dim);
        h.push(&k, &v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With threshold 0 and k covering the region, the hybrid backend is
    /// numerically identical to dense attention — for any window/sink split.
    #[test]
    fn hybrid_equals_dense_when_nothing_pruned(
        n in 2usize..80,
        window in 1usize..100,
        sinks in 0usize..20,
        seed in 0u64..500,
    ) {
        let dim = 16;
        let h = history(n, dim, seed);
        let mut rng = SimRng::seed_from(seed ^ 0xABCD);
        let q = vec![rng.normal_vec(dim)];
        let req = AttentionRequest {
            layer: 0,
            kv_head: 0,
            position: n - 1,
            queries: &q,
            history: &h,
            scale: 0.25,
        };
        let mut hybrid = LongSightBackend::new(
            HybridConfig { window, sinks, top_k: n.min(1024) },
            ThresholdTable::zeros(1, 1),
            RotationTable::identity(1, 1, dim),
        );
        let got = hybrid.attend(&req);
        let want = DenseBackend::new().attend(&req);
        for (a, b) in got[0].iter().zip(&want[0]) {
            prop_assert!((a - b).abs() < 1e-4, "hybrid {a} vs dense {b}");
        }
    }

    /// Raising the SCF threshold can only shrink the survivor set, and the
    /// blockwise variant always covers the per-token one.
    #[test]
    fn survivor_monotonicity_and_block_covering(
        n in 1usize..300,
        th in 0u32..17,
        seed in 0u64..500,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let signs: Vec<SignBits> = (0..n)
            .map(|_| SignBits::from_slice(&rng.normal_vec(16)))
            .collect();
        let q = SignBits::from_slice(&rng.normal_vec(16));
        let a = surviving_indices(&q, &signs, th);
        let b = surviving_indices(&q, &signs, th + 1);
        prop_assert!(b.len() <= a.len());
        for i in &b {
            prop_assert!(a.contains(i), "higher-threshold survivors must be a subset");
        }
        let blocks = blockwise_surviving_indices(&q, &signs, th, 64);
        for i in &a {
            prop_assert!(blocks.contains(i));
        }
    }

    /// ITQ rotations are orthogonal and preserve pairwise dot products, so
    /// full-precision scoring is unaffected by the sign-bit transform.
    #[test]
    fn itq_preserves_scores(seed in 0u64..300, dim in 4usize..24) {
        let mut rng = SimRng::seed_from(seed);
        let data = Matrix::random_gaussian(64, dim, &mut rng);
        let rot = ItqRotation::train(&data, &ItqConfig { iterations: 10, seed });
        let a = rng.normal_vec(dim);
        let b = rng.normal_vec(dim);
        let before = vecops::dot(&a, &b);
        let after = vecops::dot(&rot.apply(&a), &rot.apply(&b));
        prop_assert!((before - after).abs() < 1e-2 * (1.0 + before.abs()));
    }

    /// Quantized dot products converge to the exact value as bits grow
    /// (statistically — individual draws can be lucky at low precision).
    #[test]
    fn quantized_dot_error_shrinks_with_bits(seed in 0u64..300) {
        let mut rng = SimRng::seed_from(seed);
        let mut err2 = 0.0f32;
        let mut err8 = 0.0f32;
        for _ in 0..16 {
            let a = rng.normal_vec(64);
            let b = rng.normal_vec(64);
            let exact = vecops::dot(&a, &b);
            let approx = |bits: u32| {
                QuantVec::quantize(&a, bits).dot(&QuantVec::quantize(&b, bits))
            };
            err2 += (approx(2) - exact).abs();
            err8 += (approx(8) - exact).abs();
        }
        prop_assert!(err8 < err2, "mean 8-bit error {err8} must beat 2-bit {err2}");
    }

    /// The filter-ratio bookkeeping is internally consistent: scored keys
    /// never exceed the sparse region, retrieved never exceed min(k, scored).
    #[test]
    fn stats_are_internally_consistent(
        n in 2usize..120,
        window in 1usize..40,
        k in 1usize..50,
        th in 0u32..10,
        seed in 0u64..300,
    ) {
        let dim = 16;
        let h = history(n, dim, seed);
        let mut rng = SimRng::seed_from(seed ^ 0x7777);
        let q = vec![rng.normal_vec(dim)];
        let req = AttentionRequest {
            layer: 0,
            kv_head: 0,
            position: n - 1,
            queries: &q,
            history: &h,
            scale: 0.25,
        };
        let mut hybrid = LongSightBackend::new(
            HybridConfig { window, sinks: 2, top_k: k },
            ThresholdTable::uniform(1, 1, th),
            RotationTable::identity(1, 1, dim),
        );
        let _ = hybrid.attend(&req);
        let s = hybrid.stats();
        prop_assert!(s.scored <= s.sparse_region);
        prop_assert!(s.retrieved <= s.scored.min(k as u64));
        prop_assert_eq!(s.dense_kv, n as u64);
        prop_assert!(s.window_accessed as usize <= n);
    }
}
