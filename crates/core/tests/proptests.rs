//! Property-based tests for the LongSight algorithm crate, on the in-repo
//! [`check`](longsight_tensor::check) runner.

use longsight_core::baseline_filters::blockwise_surviving_indices;
use longsight_core::quant_filter::QuantVec;
use longsight_core::{
    filter_block_packed, scf_pass, surviving_indices, HybridConfig, ItqConfig, ItqRotation,
    LongSightBackend, RotationTable, ThresholdTable, PFU_BLOCK_KEYS,
};
use longsight_model::{AttentionBackend, AttentionRequest, DenseBackend, HeadKv};
use longsight_tensor::check::{run_cases, run_seed, Gen};
use longsight_tensor::{prop_ensure, prop_ensure_eq, vecops, Matrix, SignArena, SignBits, SimRng};

fn history(n: usize, dim: usize, seed: u64) -> HeadKv {
    let mut rng = SimRng::seed_from(seed);
    let mut h = HeadKv::new(dim);
    for _ in 0..n {
        let k = rng.normal_vec(dim);
        let v = rng.normal_vec(dim);
        h.push(&k, &v);
    }
    h
}

/// With threshold 0 and k covering the region, the hybrid backend is
/// numerically identical to dense attention — for any window/sink split.
fn check_hybrid_equals_dense(g: &mut Gen) -> Result<(), String> {
    let n = g.usize_in(2, 80);
    let window = g.usize_in(1, 100);
    let sinks = g.usize_in(0, 20);
    let seed = g.u64_in(0, 500);
    let dim = 16;
    let h = history(n, dim, seed);
    let mut rng = SimRng::seed_from(seed ^ 0xABCD);
    let q = vec![rng.normal_vec(dim)];
    let req = AttentionRequest {
        layer: 0,
        kv_head: 0,
        position: n - 1,
        queries: &q,
        history: &h,
        scale: 0.25,
    };
    let mut hybrid = LongSightBackend::new(
        HybridConfig {
            window,
            sinks,
            top_k: n.min(1024),
        },
        ThresholdTable::zeros(1, 1),
        RotationTable::identity(1, 1, dim),
    );
    let got = hybrid.attend(&req);
    let want = DenseBackend::new().attend(&req);
    for (a, b) in got[0].iter().zip(&want[0]) {
        prop_ensure!((a - b).abs() < 1e-4, "hybrid {a} vs dense {b}");
    }
    Ok(())
}

#[test]
fn hybrid_equals_dense_when_nothing_pruned() {
    run_cases(
        "hybrid_equals_dense_when_nothing_pruned",
        24,
        check_hybrid_equals_dense,
    );
}

/// Raising the SCF threshold can only shrink the survivor set, and the
/// blockwise variant always covers the per-token one.
fn check_survivor_monotonicity(g: &mut Gen) -> Result<(), String> {
    let n = g.usize_in(1, 300);
    let th = g.u32_in(0, 17);
    let seed = g.u64_in(0, 500);
    let mut rng = SimRng::seed_from(seed);
    let signs: Vec<SignBits> = (0..n)
        .map(|_| SignBits::from_slice(&rng.normal_vec(16)))
        .collect();
    let q = SignBits::from_slice(&rng.normal_vec(16));
    let a = surviving_indices(&q, &signs, th);
    let b = surviving_indices(&q, &signs, th + 1);
    prop_ensure!(b.len() <= a.len());
    for i in &b {
        prop_ensure!(a.contains(i), "higher-threshold survivors must be a subset");
    }
    let blocks = blockwise_surviving_indices(&q, &signs, th, 64);
    for i in &a {
        prop_ensure!(blocks.contains(i));
    }
    Ok(())
}

#[test]
fn survivor_monotonicity_and_block_covering() {
    run_cases(
        "survivor_monotonicity_and_block_covering",
        24,
        check_survivor_monotonicity,
    );
}

/// ITQ rotations are orthogonal and preserve pairwise dot products, so
/// full-precision scoring is unaffected by the sign-bit transform.
fn check_itq_preserves_scores(seed: u64, dim: usize) -> Result<(), String> {
    let mut rng = SimRng::seed_from(seed);
    let data = Matrix::random_gaussian(64, dim, &mut rng);
    let rot = ItqRotation::train(
        &data,
        &ItqConfig {
            iterations: 10,
            seed,
        },
    );
    let a = rng.normal_vec(dim);
    let b = rng.normal_vec(dim);
    let before = vecops::dot(&a, &b);
    let after = vecops::dot(&rot.apply(&a), &rot.apply(&b));
    prop_ensure!(
        (before - after).abs() < 1e-2 * (1.0 + before.abs()),
        "dot {before} drifted to {after} under ITQ rotation (seed {seed}, dim {dim})"
    );
    Ok(())
}

#[test]
fn itq_preserves_scores() {
    run_cases("itq_preserves_scores", 24, |g| {
        let seed = g.u64_in(0, 300);
        let dim = g.usize_in(4, 24);
        check_itq_preserves_scores(seed, dim)
    });
}

/// Quantized dot products converge to the exact value as bits grow
/// (statistically — individual draws can be lucky at low precision).
fn check_quantized_dot_error(seed: u64) -> Result<(), String> {
    let mut rng = SimRng::seed_from(seed);
    let mut err2 = 0.0f32;
    let mut err8 = 0.0f32;
    for _ in 0..16 {
        let a = rng.normal_vec(64);
        let b = rng.normal_vec(64);
        let exact = vecops::dot(&a, &b);
        let approx = |bits: u32| QuantVec::quantize(&a, bits).dot(&QuantVec::quantize(&b, bits));
        err2 += (approx(2) - exact).abs();
        err8 += (approx(8) - exact).abs();
    }
    prop_ensure!(
        err8 < err2,
        "mean 8-bit error {err8} must beat 2-bit {err2}"
    );
    Ok(())
}

#[test]
fn quantized_dot_error_shrinks_with_bits() {
    run_cases("quantized_dot_error_shrinks_with_bits", 24, |g| {
        check_quantized_dot_error(g.u64_in(0, 300))
    });
}

/// Regression: proptest once shrank a failure of the quantized-dot property
/// to `seed = 244` (crates/core/tests/proptests.proptest-regressions). That
/// property is the only one in this suite whose entire input is a single
/// `seed`, so the case is pinned here by name; the RNG swap changed the
/// stream behind the seed, but the seed value itself stays covered forever.
#[test]
fn regression_quantized_dot_error_seed_244() {
    run_seed("quantized_dot_error_shrinks_with_bits", 244, |g| {
        check_quantized_dot_error(g.u64_in(0, 300))
    });
    // Also exercise the library path at the literal seed value, matching the
    // pre-port failure exactly (proptest passed the shrunk seed straight in).
    check_quantized_dot_error(244).unwrap();
}

/// Belt-and-braces for the same recorded seed against the other seed-driven
/// property: ITQ training at seed 244 across the original dim range.
#[test]
fn regression_itq_preserves_scores_seed_244() {
    for dim in 4..24 {
        check_itq_preserves_scores(244, dim).unwrap();
    }
}

/// The filter-ratio bookkeeping is internally consistent: scored keys never
/// exceed the sparse region, retrieved never exceed min(k, scored).
fn check_stats_consistency(g: &mut Gen) -> Result<(), String> {
    let n = g.usize_in(2, 120);
    let window = g.usize_in(1, 40);
    let k = g.usize_in(1, 50);
    let th = g.u32_in(0, 10);
    let seed = g.u64_in(0, 300);
    let dim = 16;
    let h = history(n, dim, seed);
    let mut rng = SimRng::seed_from(seed ^ 0x7777);
    let q = vec![rng.normal_vec(dim)];
    let req = AttentionRequest {
        layer: 0,
        kv_head: 0,
        position: n - 1,
        queries: &q,
        history: &h,
        scale: 0.25,
    };
    let mut hybrid = LongSightBackend::new(
        HybridConfig {
            window,
            sinks: 2,
            top_k: k,
        },
        ThresholdTable::uniform(1, 1, th),
        RotationTable::identity(1, 1, dim),
    );
    let _ = hybrid.attend(&req);
    let s = hybrid.stats();
    prop_ensure!(s.scored <= s.sparse_region);
    prop_ensure!(s.retrieved <= s.scored.min(k as u64));
    prop_ensure_eq!(s.dense_kv, n as u64);
    prop_ensure!(s.window_accessed as usize <= n);
    Ok(())
}

#[test]
fn stats_are_internally_consistent() {
    run_cases(
        "stats_are_internally_consistent",
        24,
        check_stats_consistency,
    );
}

/// Builds `n` sign vectors of dimension `dim` with sign-edge values
/// (`0.0`, `-0.0`, NaN) sprinkled in, packed both per-key and into an arena.
fn edge_signed_store(n: usize, dim: usize, rng: &mut SimRng) -> (Vec<SignBits>, SignArena) {
    let mut per_key = Vec::with_capacity(n);
    let mut arena = SignArena::new(dim);
    for _ in 0..n {
        let mut v = rng.normal_vec(dim);
        for x in v.iter_mut() {
            let r = rng.uniform();
            if r < 0.05 {
                *x = 0.0;
            } else if r < 0.10 {
                *x = -0.0;
            } else if r < 0.15 {
                *x = f32::NAN;
            }
        }
        per_key.push(SignBits::from_slice(&v));
        arena.push_signs_of(&v);
    }
    (per_key, arena)
}

/// The bitplane kernel is bit-identical to the per-key `scf_pass` scan:
/// for every 128-key block, every key's bitmap bit equals its per-key
/// filter decision — any dimension (spanning `u64` word boundaries), any
/// threshold, with `-0.0` and NaN packing as non-negative in both paths.
fn check_packed_kernel_equivalence(g: &mut Gen) -> Result<(), String> {
    let dim = g.usize_in(1, 200);
    let n = g.usize_in(1, 300);
    let th = g.u32_in(0, dim as u32 + 1);
    let seed = g.u64_in(0, 1000);
    let mut rng = SimRng::seed_from(seed);
    let (per_key, arena) = edge_signed_store(n, dim, &mut rng);
    let q = SignBits::from_slice(&rng.normal_vec(dim));
    let mut block = 0;
    while block < n {
        let end = (block + PFU_BLOCK_KEYS).min(n);
        let bitmap = filter_block_packed(&q, &arena, block..end, th);
        for (i, key) in per_key.iter().enumerate().take(end).skip(block) {
            let want = scf_pass(&q, key, th);
            let got = bitmap >> (i - block) & 1 == 1;
            prop_ensure!(
                got == want,
                "key {i}: packed {got} vs per-key {want} (dim {dim}, th {th}, seed {seed})"
            );
        }
        // Bits beyond the block must stay clear.
        if end - block < 128 {
            prop_ensure!(
                bitmap >> (end - block) == 0,
                "stray bits beyond a {}-key block",
                end - block
            );
        }
        block = end;
    }
    // Arena round-trip and concordance agree with the per-key store.
    let probe = g.usize_in(0, n - 1);
    prop_ensure_eq!(arena.get(probe), per_key[probe].clone());
    prop_ensure_eq!(arena.concordance(probe, &q), q.concordance(&per_key[probe]));
    Ok(())
}

#[test]
fn packed_kernel_matches_per_key_scan() {
    run_cases(
        "packed_kernel_matches_per_key_scan",
        48,
        check_packed_kernel_equivalence,
    );
}

/// Word-boundary dims and the exact 128-key block edge, deterministically:
/// the probabilistic property above covers the space; this pins the corners.
#[test]
fn packed_kernel_word_boundaries_and_block_edge() {
    for dim in [1, 63, 64, 65, 127, 128, 129, 191, 192, 193] {
        let mut rng = SimRng::seed_from(dim as u64);
        let (per_key, arena) = edge_signed_store(128, dim, &mut rng);
        let q = SignBits::from_slice(&rng.normal_vec(dim));
        for th in [0, 1, dim as u32 / 2, dim as u32, dim as u32 + 1] {
            let bitmap = filter_block_packed(&q, &arena, 0..128, th);
            for (i, k) in per_key.iter().enumerate() {
                assert_eq!(
                    bitmap >> i & 1 == 1,
                    scf_pass(&q, k, th),
                    "dim {dim} th {th} key {i}"
                );
            }
        }
    }
}
