//! CXL.mem link model.
//!
//! DReX is a Type-3 CXL device whose internal DRAM and MMIO registers are
//! mapped into the GPU address space (paper §6): the GPU writes Request
//! Descriptors into an MMIO Request Queue, polls a Polling Register, and
//! reads top-k results from Response Buffers — all over the CXL/PCIe link.
//!
//! The paper measures these overheads by emulating CXL on a dual-socket Xeon
//! (following Pond \[18\]) and folds them into its performance model; this
//! module exposes the same knobs with literature-consistent defaults for a
//! PCIe 5.0 ×16 link.
//!
//! # Example
//!
//! ```
//! use longsight_cxl::CxlLink;
//!
//! let link = CxlLink::pcie5_x16();
//! // Reading 1024 top-k value vectors of 128 BF16 dims ≈ 256 KiB:
//! let ns = link.transfer_ns(1024 * 128 * 2);
//! assert!(ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use longsight_faults::{domain, FaultInjector};
use longsight_obs::{ArgVal, Recorder, TrackId};

/// Flit window retransmitted per CRC replay round, bytes. PCIe/CXL links
/// recover from CRC errors by replaying from the last acknowledged flit, so
/// a replay costs re-arbitration plus one replay-buffer window — not the
/// whole payload.
pub const REPLAY_WINDOW_BYTES: usize = 4096;

/// Latency/bandwidth parameters of the CXL link between GPU and DReX.
#[derive(Debug, Clone, PartialEq)]
pub struct CxlLink {
    /// One-way latency of a posted MMIO write (doorbell / descriptor word).
    pub mmio_write_ns: f64,
    /// Round-trip latency of an uncached MMIO read (one poll).
    pub mmio_read_ns: f64,
    /// Base one-way latency added to every bulk transfer.
    pub base_latency_ns: f64,
    /// Sustained payload bandwidth, bytes per nanosecond (= GB/s).
    pub bandwidth_gbps: f64,
    /// Period of the GPU's completion-polling loop.
    pub poll_interval_ns: f64,
}

impl CxlLink {
    /// PCIe 5.0 ×16 CXL defaults.
    ///
    /// ~64 GB/s raw ×16 PCIe 5.0; ~85 % payload efficiency after CXL.mem
    /// flit overhead → 54 GB/s sustained. MMIO read round trip and base
    /// latency follow published CXL Type-3 access measurements (~300–600 ns),
    /// consistent with the paper's dual-socket emulation methodology.
    pub fn pcie5_x16() -> Self {
        Self {
            mmio_write_ns: 150.0,
            mmio_read_ns: 600.0,
            base_latency_ns: 300.0,
            bandwidth_gbps: 54.0,
            poll_interval_ns: 200.0,
        }
    }

    /// Time for a bulk transfer of `bytes` over the link.
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        self.base_latency_ns + bytes as f64 / self.bandwidth_gbps
    }

    /// Time to submit a descriptor of `bytes` via MMIO writes (64 B per
    /// write-combining store).
    pub fn descriptor_submit_ns(&self, bytes: usize) -> f64 {
        let stores = bytes.div_ceil(64);
        // Posted writes pipeline; the first incurs full latency, the rest
        // stream at one store per 8 ns (write-combining buffer drain).
        self.mmio_write_ns + stores.saturating_sub(1) as f64 * 8.0
    }

    /// Completion observation time: the device finishes at `ready_at`
    /// (relative ns); the GPU polls every `poll_interval_ns`. Returns the
    /// time at which the GPU *observes* completion, including the final
    /// MMIO read.
    pub fn polled_completion_ns(&self, ready_at: f64) -> f64 {
        if ready_at <= 0.0 {
            return self.mmio_read_ns;
        }
        let polls = (ready_at / self.poll_interval_ns).ceil();
        polls * self.poll_interval_ns + self.mmio_read_ns
    }

    /// End-to-end time to make the result of `bytes` visible to the GPU:
    /// polling until `ready_at`, then reading the payload.
    pub fn observe_and_read_ns(&self, ready_at: f64, bytes: usize) -> f64 {
        self.polled_completion_ns(ready_at) + self.transfer_ns(bytes)
    }

    /// In-flight transfer accounting for the lookahead pipeline: given a
    /// chain (device work + link transfer) of `in_flight_ns` issued
    /// speculatively one step ahead, and `compute_ns` of GPU work available
    /// to hide it behind, returns the portion of the chain that overlaps
    /// with compute. The remainder, `in_flight_ns - overlapped`, is what the
    /// decode step still sees as visible wait.
    pub fn overlapped_ns(&self, in_flight_ns: f64, compute_ns: f64) -> f64 {
        in_flight_ns.min(compute_ns.max(0.0))
    }

    /// Cost of one CRC replay round on a transfer of `bytes`: link
    /// re-arbitration (the base latency) plus retransmission of the last
    /// replay-buffer window.
    pub fn replay_penalty_ns(&self, bytes: usize) -> f64 {
        self.base_latency_ns + bytes.min(REPLAY_WINDOW_BYTES) as f64 / self.bandwidth_gbps
    }

    /// Bulk transfer time including `replays` CRC replay rounds. With zero
    /// replays this is exactly [`CxlLink::transfer_ns`]; each round adds a
    /// fixed penalty, so the time is monotone in the replay count.
    pub fn transfer_ns_with_replays(&self, bytes: usize, replays: u32) -> f64 {
        self.transfer_ns(bytes) + replays as f64 * self.replay_penalty_ns(bytes)
    }

    /// Completion observation under replays: a replayed completion message
    /// costs the GPU one extra polling round per replay on top of
    /// [`CxlLink::polled_completion_ns`].
    pub fn polled_completion_ns_with_replays(&self, ready_at: f64, replays: u32) -> f64 {
        self.polled_completion_ns(ready_at) + replays as f64 * self.poll_interval_ns
    }

    /// [`CxlLink::descriptor_submit_ns`] that also emits a `cxl.submit` span
    /// starting at simulated time `start_ns` on `track`.
    pub fn descriptor_submit_ns_traced(
        &self,
        bytes: usize,
        rec: &mut Recorder,
        track: TrackId,
        start_ns: f64,
    ) -> f64 {
        let t = self.descriptor_submit_ns(bytes);
        rec.leaf_with(
            track,
            "cxl.submit",
            start_ns,
            start_ns + t,
            &[("bytes", ArgVal::U(bytes as u64))],
        );
        t
    }

    /// [`CxlLink::polled_completion_ns_with_replays`] that also emits a
    /// `cxl.poll` span starting at simulated time `start_ns` on `track`.
    pub fn polled_completion_ns_traced(
        &self,
        ready_at: f64,
        replays: u32,
        rec: &mut Recorder,
        track: TrackId,
        start_ns: f64,
    ) -> f64 {
        let t = self.polled_completion_ns_with_replays(ready_at, replays);
        rec.leaf_with(
            track,
            "cxl.poll",
            start_ns,
            start_ns + t,
            &[
                ("ready_at_ns", ArgVal::F(ready_at)),
                ("replays", ArgVal::U(replays as u64)),
            ],
        );
        t
    }

    /// [`CxlLink::transfer_ns_with_replays`] that also emits a `cxl.transfer`
    /// span starting at simulated time `start_ns` on `track`. Replay rounds
    /// (CRC retransmits) are recorded as an argument so faulted transfers are
    /// distinguishable in the trace viewer.
    pub fn transfer_ns_traced(
        &self,
        bytes: usize,
        replays: u32,
        rec: &mut Recorder,
        track: TrackId,
        start_ns: f64,
    ) -> f64 {
        let t = self.transfer_ns_with_replays(bytes, replays);
        rec.leaf_with(
            track,
            "cxl.transfer",
            start_ns,
            start_ns + t,
            &[
                ("bytes", ArgVal::U(bytes as u64)),
                ("replays", ArgVal::U(replays as u64)),
            ],
        );
        t
    }

    /// Fault-injected bulk transfer: samples the CRC replay count for this
    /// transfer's event `stream` from `inj` (deterministically — the count
    /// depends only on the injector's seed and the stream key) and returns
    /// `(transfer time, replay rounds)`.
    pub fn transfer_ns_injected(
        &self,
        bytes: usize,
        inj: &FaultInjector,
        stream: u64,
    ) -> (f64, u32) {
        let replays = inj.link_replays(longsight_faults::stream(domain::LINK, stream, 0, 0));
        (self.transfer_ns_with_replays(bytes, replays), replays)
    }

    /// Fault-injected end-to-end observation: polling (inflated by one poll
    /// round per replay) plus the replayed payload read. Returns
    /// `(observed time, replay rounds)`.
    pub fn observe_and_read_ns_injected(
        &self,
        ready_at: f64,
        bytes: usize,
        inj: &FaultInjector,
        stream: u64,
    ) -> (f64, u32) {
        let replays = inj.link_replays(longsight_faults::stream(domain::LINK, stream, 0, 0));
        let t = self.polled_completion_ns_with_replays(ready_at, replays)
            + self.transfer_ns_with_replays(bytes, replays);
        (t, replays)
    }
}

impl Default for CxlLink {
    fn default() -> Self {
        Self::pcie5_x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_linearly_with_size() {
        let l = CxlLink::pcie5_x16();
        let small = l.transfer_ns(1024);
        let big = l.transfer_ns(1024 * 1024);
        assert!(big > small);
        // Slope check: doubling payload doubles the bandwidth term.
        let a = l.transfer_ns(2_000_000) - l.base_latency_ns;
        let b = l.transfer_ns(1_000_000) - l.base_latency_ns;
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn polling_quantizes_completion_time() {
        let l = CxlLink::pcie5_x16();
        // Ready at 250 ns with a 200 ns poll period → observed on the poll
        // at 400 ns plus the read round trip.
        let t = l.polled_completion_ns(250.0);
        assert!((t - (400.0 + l.mmio_read_ns)).abs() < 1e-9);
        // Already ready: one read.
        assert_eq!(l.polled_completion_ns(0.0), l.mmio_read_ns);
    }

    #[test]
    fn descriptor_submit_grows_with_size() {
        let l = CxlLink::pcie5_x16();
        let one = l.descriptor_submit_ns(64);
        let many = l.descriptor_submit_ns(64 * 100);
        assert_eq!(one, l.mmio_write_ns);
        assert!(many > one);
        assert!(many < l.mmio_write_ns + 100.0 * 8.0);
    }

    #[test]
    fn overlap_accounting_is_clamped_to_the_chain_and_the_budget() {
        let l = CxlLink::pcie5_x16();
        // Chain fully hidden when compute is longer.
        assert_eq!(l.overlapped_ns(100.0, 250.0), 100.0);
        // Compute shorter: only the compute window hides.
        assert_eq!(l.overlapped_ns(400.0, 250.0), 250.0);
        // Negative budgets hide nothing.
        assert_eq!(l.overlapped_ns(400.0, -5.0), 0.0);
    }

    #[test]
    fn replays_inflate_transfer_and_polling_monotonically() {
        let l = CxlLink::pcie5_x16();
        let bytes = 256 * 1024;
        assert_eq!(l.transfer_ns_with_replays(bytes, 0), l.transfer_ns(bytes));
        let t1 = l.transfer_ns_with_replays(bytes, 1);
        let t3 = l.transfer_ns_with_replays(bytes, 3);
        assert!(t1 > l.transfer_ns(bytes));
        assert!(t3 > t1);
        // Replay retransmits a flit window, never the full payload.
        assert!(t1 - l.transfer_ns(bytes) < l.transfer_ns(bytes));
        assert_eq!(
            l.polled_completion_ns_with_replays(500.0, 0),
            l.polled_completion_ns(500.0)
        );
        assert!(l.polled_completion_ns_with_replays(500.0, 2) > l.polled_completion_ns(500.0));
    }

    #[test]
    fn injected_transfer_is_deterministic_and_clean_when_disabled() {
        use longsight_faults::{FaultInjector, FaultProfile};
        let l = CxlLink::pcie5_x16();
        let off = FaultInjector::disabled();
        let (t, r) = l.transfer_ns_injected(4096, &off, 42);
        assert_eq!(r, 0);
        assert_eq!(t, l.transfer_ns(4096));
        let inj = FaultInjector::new(FaultProfile::severe(), 9);
        let a = l.observe_and_read_ns_injected(1000.0, 4096, &inj, 42);
        let b = l.observe_and_read_ns_injected(1000.0, 4096, &inj, 42);
        assert_eq!(a, b, "same stream must reproduce the same replay count");
        // At severe rates, some stream in a small range replays.
        let replayed = (0..100u64)
            .map(|s| l.transfer_ns_injected(4096, &inj, s).1)
            .any(|r| r > 0);
        assert!(replayed);
    }

    #[test]
    fn traced_variants_match_plain_and_emit_spans() {
        let l = CxlLink::pcie5_x16();
        let mut rec = Recorder::enabled();
        let track = rec.track("cxl");
        let mut at = 0.0;
        let submit = l.descriptor_submit_ns_traced(256, &mut rec, track, at);
        assert_eq!(submit, l.descriptor_submit_ns(256));
        at += submit;
        let poll = l.polled_completion_ns_traced(1000.0, 1, &mut rec, track, at);
        assert_eq!(poll, l.polled_completion_ns_with_replays(1000.0, 1));
        at += poll;
        let xfer = l.transfer_ns_traced(4096, 2, &mut rec, track, at);
        assert_eq!(xfer, l.transfer_ns_with_replays(4096, 2));
        assert_eq!(rec.spans().len(), 3);
        rec.validate_well_formed().unwrap();

        // No-op recorder: identical numbers, zero events.
        let mut off = Recorder::disabled();
        let t0 = off.track("cxl");
        assert_eq!(
            l.transfer_ns_traced(4096, 2, &mut off, t0, 0.0),
            l.transfer_ns_with_replays(4096, 2)
        );
        assert!(off.spans().is_empty());
    }

    #[test]
    fn value_readback_time_is_plausible() {
        // 1024 values × 128 dims × 2 B ≈ 256 KiB → ~5 µs at 54 GB/s.
        let l = CxlLink::pcie5_x16();
        let ns = l.transfer_ns(1024 * 128 * 2);
        assert!((4_000.0..8_000.0).contains(&ns), "got {ns}");
    }
}
