//! DReX CXL Controller (DCC) scheduling model (paper §7.2).
//!
//! The DCC pulls Request Descriptors from its MMIO queue in FIFO order,
//! distributes per-head (and per-slice) workloads to the NMAs that host the
//! corresponding Context Slices, aggregates partial top-k lists, and posts
//! completions to per-user Response Buffers that the GPU polls over CXL.
//!
//! This module tracks per-NMA busy timelines, which is what produces the
//! multi-user contention behaviour of Figs 8 (bottom) and 9.

use crate::descriptor::REQUEST_QUEUE_DEPTH;
use crate::layout::MAX_CONTEXT_SLICE_KEYS;
use crate::offload::{time_slice_offload, DrexParams, HeadOffloadSpec, HeadOffloadTiming};
use longsight_cxl::CxlLink;
use longsight_faults::FaultError;
use longsight_obs::{ArgVal, Recorder};

/// One head's workload with the packages hosting its slices.
#[derive(Debug, Clone)]
pub struct HeadWork {
    /// The workload parameters.
    pub spec: HeadOffloadSpec,
    /// Hosting package for each Context Slice segment (parallel NMAs).
    pub slice_packages: Vec<usize>,
}

/// End-to-end timing of one offloaded request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTiming {
    /// Arrival at the DCC (descriptor fully written), ns.
    pub submitted_ns: f64,
    /// All NMA work complete and response buffer populated, ns.
    pub device_done_ns: f64,
    /// GPU has observed completion and finished reading the response, ns.
    pub observed_ns: f64,
    /// Portion of `observed − device_done` spent moving values over CXL.
    pub value_read_ns: f64,
    /// Breakdown of the critical (slowest) head chain.
    pub critical_head: HeadOffloadTiming,
    /// Time the request waited for a free NMA (queueing), ns.
    pub queue_wait_ns: f64,
}

impl RequestTiming {
    /// Total latency from arrival to observed completion.
    pub fn total_ns(&self) -> f64 {
        self.observed_ns
    }
}

/// The DCC scheduler: per-package NMA busy timelines plus the CXL front end.
#[derive(Debug, Clone)]
pub struct DccSim {
    params: DrexParams,
    link: CxlLink,
    nma_busy: Vec<f64>,
    in_flight: usize,
    served: u64,
}

impl DccSim {
    /// Creates a scheduler for a device with `packages` NMAs.
    ///
    /// # Panics
    ///
    /// Panics if `packages == 0`.
    pub fn new(params: DrexParams, link: CxlLink, packages: usize) -> Self {
        assert!(packages > 0, "need at least one NMA");
        Self {
            params,
            link,
            nma_busy: vec![0.0; packages],
            in_flight: 0,
            served: 0,
        }
    }

    /// The hardware parameters.
    pub fn params(&self) -> &DrexParams {
        &self.params
    }

    /// The CXL link model.
    pub fn link(&self) -> &CxlLink {
        &self.link
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Resets the NMA timelines (new measurement epoch).
    pub fn reset_timelines(&mut self) {
        self.nma_busy.iter_mut().for_each(|t| *t = 0.0);
        self.in_flight = 0;
    }

    /// Schedules pre-timed slice workloads onto the NMA timelines, starting
    /// no earlier than `start_ns`. Returns `(device_done_ns, queue_wait_ns)`.
    ///
    /// This is the fast path for serving-level simulation where many users
    /// submit *identical* workloads: the caller times each distinct slice
    /// once and replays the durations here.
    pub fn schedule_slices(&mut self, start_ns: f64, slices: &[(usize, f64)]) -> (f64, f64) {
        let mut rec = Recorder::disabled();
        self.schedule_slices_traced(start_ns, slices, &mut rec, "nma.slice")
    }

    /// [`DccSim::schedule_slices`] that also emits one span per slice on a
    /// per-NMA track (`nma/p{slot}`), named `label`, covering the slice's
    /// busy interval with its queueing delay as an argument. The returned
    /// `(done, wait)` and the busy-timeline mutation are bit-identical to the
    /// plain call.
    pub fn schedule_slices_traced(
        &mut self,
        start_ns: f64,
        slices: &[(usize, f64)],
        rec: &mut Recorder,
        label: &str,
    ) -> (f64, f64) {
        let mut done = start_ns;
        let mut wait: f64 = 0.0;
        for &(pkg, duration) in slices {
            let slot = pkg % self.nma_busy.len();
            let begin = self.nma_busy[slot].max(start_ns);
            wait = wait.max(begin - start_ns);
            let end = begin + duration;
            self.nma_busy[slot] = end;
            done = done.max(end);
            if rec.is_enabled() {
                let track = rec.track(&format!("nma/p{slot}"));
                rec.leaf_with(
                    track,
                    label,
                    begin,
                    end,
                    &[("queued_ns", ArgVal::F(begin - start_ns))],
                );
            }
        }
        (done, wait)
    }

    /// Submits one request at `arrival_ns`.
    ///
    /// `descriptor_bytes`/`response_bytes` size the CXL transfers; `heads`
    /// lists each KV head's workload and slice placement.
    ///
    /// # Panics
    ///
    /// Panics if the hardware queue would overflow (more than 512 requests
    /// in flight) or a slice placement is inconsistent. Fault-tolerant
    /// callers should use [`DccSim::try_submit`] instead.
    pub fn submit(
        &mut self,
        arrival_ns: f64,
        heads: &[HeadWork],
        descriptor_bytes: usize,
        response_bytes: usize,
    ) -> RequestTiming {
        match self.try_submit(arrival_ns, heads, descriptor_bytes, response_bytes) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`DccSim::submit`] with a typed error path: a full hardware queue
    /// comes back as [`FaultError::QueueOverflow`] so overload propagates as
    /// a `Result` instead of aborting the simulation.
    ///
    /// # Errors
    ///
    /// [`FaultError::QueueOverflow`] when more than the hardware queue depth
    /// of requests are in flight.
    ///
    /// # Panics
    ///
    /// Still panics on inconsistent slice placements — those are programmer
    /// errors, not injectable faults.
    pub fn try_submit(
        &mut self,
        arrival_ns: f64,
        heads: &[HeadWork],
        descriptor_bytes: usize,
        response_bytes: usize,
    ) -> Result<RequestTiming, FaultError> {
        if self.in_flight >= REQUEST_QUEUE_DEPTH {
            return Err(FaultError::QueueOverflow {
                depth: REQUEST_QUEUE_DEPTH,
            });
        }
        let submitted_ns = arrival_ns + self.link.descriptor_submit_ns(descriptor_bytes);

        let mut device_done = submitted_ns;
        let mut critical = HeadOffloadTiming::default();
        let mut queue_wait: f64 = 0.0;
        for (hi, head) in heads.iter().enumerate() {
            let slices = head
                .spec
                .context_len
                .div_ceil(MAX_CONTEXT_SLICE_KEYS)
                .max(1);
            assert_eq!(
                head.slice_packages.len(),
                slices,
                "head {hi}: {} slice packages for {} slices",
                head.slice_packages.len(),
                slices
            );
            let mut head_done = submitted_ns;
            let mut head_worst = HeadOffloadTiming::default();
            let mut remaining = head.spec.context_len;
            let mut remaining_survivors = head.spec.survivors;
            for (si, &pkg) in head.slice_packages.iter().enumerate() {
                let keys = remaining.min(MAX_CONTEXT_SLICE_KEYS);
                let survivors = if si + 1 == slices {
                    remaining_survivors
                } else {
                    ((head.spec.survivors as f64) * keys as f64
                        / head.spec.context_len.max(1) as f64)
                        .round() as usize
                }
                .min(remaining_survivors)
                .min(keys);
                remaining -= keys;
                remaining_survivors -= survivors;
                if keys == 0 {
                    continue;
                }
                let t = time_slice_offload(
                    &self.params,
                    &head.spec,
                    keys,
                    survivors,
                    (self.served << 16) ^ ((hi as u64) << 8) ^ si as u64,
                );
                let slot = pkg % self.nma_busy.len();
                let nma = &mut self.nma_busy[slot];
                let start = nma.max(submitted_ns);
                queue_wait = queue_wait.max(start - submitted_ns);
                let end = start + t.total_ns();
                *nma = end;
                if end > head_done {
                    head_done = end;
                    head_worst = t;
                }
            }
            // After ranking, the NMA streams the k winning Value vectors out
            // of LPDDR into the Response Buffer (channel-interleaved like the
            // keys; a small serial tail after the last slice finishes).
            let value_bytes = (head.spec.k.min(self.params.max_k) * head.spec.head_dim * 2) as f64;
            let package_bw = 8.0 * self.params.dram.channel_bandwidth_gbps();
            head_done += value_bytes / package_bw + self.params.dram.row_conflict_latency();
            if head_done > device_done {
                device_done = head_done;
                critical = head_worst;
            }
        }

        // GPU observes completion via polling, then reads the response.
        let ready_rel = device_done - arrival_ns;
        let value_read_ns = self.link.transfer_ns(response_bytes);
        let observed_ns = arrival_ns + self.link.polled_completion_ns(ready_rel) + value_read_ns;

        self.served += 1;
        Ok(RequestTiming {
            submitted_ns,
            device_done_ns: device_done,
            observed_ns,
            value_read_ns,
            critical_head: critical,
            queue_wait_ns: queue_wait,
        })
    }
}

/// A bounded pool of in-flight speculative offload slots (the lookahead
/// pipeline's backpressure model).
///
/// Each slot carries one speculative filter→bitmap→addr-gen→fetch/score→top-k
/// chain issued at decode step *t* for step *t+1* and stays busy until the
/// chain's simulated completion time. When every slot is busy a new issue is
/// *denied* and that token falls back to the synchronous path — no queueing,
/// no retry, so denial is free of any re-filter penalty. Slots are pooled per
/// DReX device, not per request, which is what lets batched requests share
/// the speculative pipeline.
///
/// Purely simulated-time state: identical call sequences produce identical
/// occupancy timelines at any worker-thread count.
#[derive(Debug, Clone)]
pub struct SpecSlotPool {
    slots: usize,
    in_flight: Vec<f64>,
    peak: usize,
    issued: u64,
    denied: u64,
}

impl SpecSlotPool {
    /// Creates a pool with `slots` concurrent speculative chains.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` — a zero-slot pool would deny everything,
    /// which callers express by disabling lookahead instead.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one speculative slot");
        Self {
            slots,
            in_flight: Vec::with_capacity(slots),
            peak: 0,
            issued: 0,
            denied: 0,
        }
    }

    /// The configured slot bound.
    pub fn capacity(&self) -> usize {
        self.slots
    }

    /// Retires every slot whose chain completed at or before `now_ns`.
    pub fn release_until(&mut self, now_ns: f64) {
        self.in_flight.retain(|&done| done > now_ns);
    }

    /// Tries to occupy one slot from `now_ns` for `duration_ns`. Returns
    /// `false` (denied, backpressure) when all slots are busy.
    pub fn try_issue(&mut self, now_ns: f64, duration_ns: f64) -> bool {
        if self.in_flight.len() >= self.slots {
            self.denied += 1;
            return false;
        }
        self.in_flight.push(now_ns + duration_ns.max(0.0));
        self.peak = self.peak.max(self.in_flight.len());
        self.issued += 1;
        true
    }

    /// Slots currently busy.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// High-water mark of concurrent slots over the pool's lifetime.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Total successful issues.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total denied issues (backpressure events).
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(context: usize, survivors: usize, packages: Vec<usize>) -> HeadWork {
        HeadWork {
            spec: HeadOffloadSpec {
                context_len: context,
                head_dim: 128,
                queries: 4,
                k: 1024,
                survivors,
            },
            slice_packages: packages,
        }
    }

    fn dcc() -> DccSim {
        DccSim::new(DrexParams::paper(), CxlLink::pcie5_x16(), 8)
    }

    #[test]
    fn single_request_has_ordered_phases() {
        let mut d = dcc();
        let t = d.submit(0.0, &[head(32_768, 1_600, vec![0])], 1024, 256 * 1024);
        assert!(t.submitted_ns > 0.0);
        assert!(t.device_done_ns > t.submitted_ns);
        assert!(t.observed_ns > t.device_done_ns);
        assert!(t.value_read_ns > 0.0);
        assert_eq!(t.queue_wait_ns, 0.0);
    }

    #[test]
    fn heads_on_distinct_packages_run_in_parallel() {
        let mut serial = dcc();
        let same_pkg: Vec<HeadWork> = (0..4).map(|_| head(65_536, 3_000, vec![0])).collect();
        let t_serial = serial.submit(0.0, &same_pkg, 1024, 1024);

        let mut parallel = dcc();
        let spread: Vec<HeadWork> = (0..4).map(|i| head(65_536, 3_000, vec![i])).collect();
        let t_parallel = parallel.submit(0.0, &spread, 1024, 1024);

        assert!(
            t_parallel.device_done_ns < t_serial.device_done_ns,
            "spreading heads across packages must be faster: {} vs {}",
            t_parallel.device_done_ns,
            t_serial.device_done_ns
        );
    }

    #[test]
    fn back_to_back_requests_queue_on_busy_nmas() {
        let mut d = dcc();
        let w = vec![head(131_072, 6_000, vec![0])];
        let t1 = d.submit(0.0, &w, 1024, 1024);
        let t2 = d.submit(0.0, &w, 1024, 1024);
        assert!(
            t2.queue_wait_ns > 0.0,
            "second request must wait for the NMA"
        );
        assert!(t2.device_done_ns > t1.device_done_ns);
    }

    #[test]
    fn multi_slice_head_uses_parallel_nmas() {
        let mut d = dcc();
        let big = head(2 * MAX_CONTEXT_SLICE_KEYS, 12_000, vec![0, 1]);
        let t_par = d.submit(0.0, &[big], 1024, 1024);
        let mut d2 = dcc();
        let crammed = head(2 * MAX_CONTEXT_SLICE_KEYS, 12_000, vec![0, 0]);
        let t_ser = d2.submit(0.0, &[crammed], 1024, 1024);
        assert!(t_par.device_done_ns < t_ser.device_done_ns);
    }

    #[test]
    fn try_submit_matches_submit() {
        let mut a = dcc();
        let mut b = dcc();
        let w = vec![head(65_536, 3_000, vec![0])];
        let t1 = a.submit(0.0, &w, 1024, 1024);
        let t2 = b.try_submit(0.0, &w, 1024, 1024).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "slice packages")]
    fn wrong_slice_package_count_panics() {
        let mut d = dcc();
        let bad = head(2 * MAX_CONTEXT_SLICE_KEYS, 100, vec![0]); // needs 2
        let _ = d.submit(0.0, &[bad], 64, 64);
    }

    #[test]
    fn spec_pool_denies_past_capacity_and_releases_on_completion() {
        let mut pool = SpecSlotPool::new(2);
        assert!(pool.try_issue(0.0, 100.0));
        assert!(pool.try_issue(0.0, 200.0));
        assert!(!pool.try_issue(0.0, 50.0), "third issue must be denied");
        assert_eq!(pool.occupancy(), 2);
        assert_eq!(pool.denied(), 1);

        pool.release_until(150.0); // first chain done at 100
        assert_eq!(pool.occupancy(), 1);
        assert!(pool.try_issue(150.0, 10.0));
        assert_eq!(pool.issued(), 3);
        assert_eq!(pool.peak_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "speculative slot")]
    fn zero_slot_pool_panics() {
        let _ = SpecSlotPool::new(0);
    }
}
