//! NMA scratchpad memories (paper §7.4, §8.2).
//!
//! Each NMA holds a *Query SPM* (the GQA group's query vectors during
//! scoring) and an *Address SPM* (the 32-bit [`crate::IdAddress`]es of
//! surviving keys awaiting fetch). The paper sizes these from its ref. \[5\]
//! and notes
//! LongSight "only slightly increases the SPM size of the NMAs" over DReX.
//!
//! The Address SPM is a real constraint: when a filtering epoch produces
//! more survivors than fit, the NMA must drain (fetch + score) before
//! filtering further — extra filter/score alternations that show up as
//! additional passes in the offload state machine.

/// Scratchpad capacities of one NMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmConfig {
    /// Address SPM capacity in bytes (each survivor costs 4 B).
    pub address_bytes: usize,
    /// Query SPM capacity in bytes (BF16 query vectors).
    pub query_bytes: usize,
}

impl SpmConfig {
    /// The configuration used in the paper's synthesis: room for 64K
    /// survivor addresses (256 KiB) and a 16-query batch of dimension 128
    /// (4 KiB).
    pub fn paper() -> Self {
        Self {
            address_bytes: 256 << 10,
            query_bytes: 4 << 10,
        }
    }

    /// How many survivor addresses fit.
    pub fn address_capacity(&self) -> usize {
        self.address_bytes / 4
    }

    /// Largest query batch (of dimension `head_dim`, BF16) that fits.
    pub fn query_capacity(&self, head_dim: usize) -> usize {
        self.query_bytes / (head_dim * 2)
    }

    /// Number of filter→drain passes needed for `survivors` addresses.
    pub fn drain_passes(&self, survivors: usize) -> usize {
        survivors.div_ceil(self.address_capacity()).max(1)
    }

    /// Checks a GQA group fits the Query SPM.
    ///
    /// # Errors
    ///
    /// Describes the violation.
    pub fn check_query_batch(&self, queries: usize, head_dim: usize) -> Result<(), String> {
        let cap = self.query_capacity(head_dim);
        if queries > cap {
            return Err(format!(
                "query batch of {queries} exceeds Query SPM capacity {cap} at dim {head_dim}"
            ));
        }
        Ok(())
    }
}

impl Default for SpmConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities() {
        let s = SpmConfig::paper();
        assert_eq!(s.address_capacity(), 65_536);
        assert_eq!(s.query_capacity(128), 16);
        assert_eq!(s.query_capacity(64), 32);
    }

    #[test]
    fn full_slice_at_low_filter_ratio_needs_multiple_passes() {
        // A 131,072-key slice where half survive overflows a 64K-address SPM.
        let s = SpmConfig::paper();
        assert_eq!(s.drain_passes(65_536), 1);
        assert_eq!(s.drain_passes(65_537), 2);
        assert_eq!(s.drain_passes(131_072), 2);
        assert_eq!(s.drain_passes(0), 1);
    }

    #[test]
    fn paper_query_batch_fits() {
        let s = SpmConfig::paper();
        assert!(s.check_query_batch(16, 128).is_ok());
        assert!(s.check_query_batch(17, 128).is_err());
    }
}
