//! Functional DReX device model.
//!
//! [`DrexDevice`] stores Key Sign Objects, Key Objects, and Value Objects per
//! `(user, layer, kv_head)` — the paper's per-head vector databases — and
//! executes sparse-attention offloads with the exact filter → score → rank
//! semantics of the hardware, returning both the retrieved top-k results and
//! a timing record from the DCC/NMA model.
//!
//! Keys are stored at BF16 precision, matching the Key Object format; scores
//! are therefore computed on BF16-rounded keys exactly as the NMA would.

use crate::dcc::{DccSim, HeadWork, RequestTiming};
use crate::descriptor::{RequestDescriptor, ResponseDescriptor, TopHit};
use crate::layout::{ObjectFootprint, UserPartition, MAX_CONTEXT_SLICE_KEYS};
use crate::offload::{DrexParams, HeadOffloadSpec};
use crate::response_buffers::ResponseBufferTable;
use longsight_core::{
    filter_block_packed, ItqRotation, RotationTable, ThresholdTable, PFU_BLOCK_KEYS,
};
use longsight_cxl::CxlLink;
use longsight_dram::Geometry;
use longsight_faults::{domain, FaultInjector};
use longsight_obs::{ArgVal, Recorder};
use longsight_tensor::{quantize_bf16_in_place, vecops, FlatVecs, SignArena, TopK};

/// Errors returned by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device is out of memory capacity.
    CapacityExceeded {
        /// Bytes requested beyond what remains.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// Referenced user was never registered.
    UnknownUser(u32),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::CapacityExceeded { needed, available } => write!(
                f,
                "device capacity exceeded: need {needed} bytes, {available} available"
            ),
            DeviceError::UnknownUser(u) => write!(f, "unknown user id {u}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Per-head storage: sign objects, BF16 keys, BF16 values.
#[derive(Debug, Clone)]
struct HeadStore {
    signs: SignArena,
    keys: FlatVecs,
    values: FlatVecs,
}

impl HeadStore {
    fn new(dim: usize) -> Self {
        Self {
            signs: SignArena::new(dim),
            keys: FlatVecs::new(dim),
            values: FlatVecs::new(dim),
        }
    }
}

/// Per-user context storage.
#[derive(Debug, Clone)]
struct UserStore {
    heads: Vec<HeadStore>,
}

/// The functional + timing DReX device.
#[derive(Debug, Clone)]
pub struct DrexDevice {
    geometry: Geometry,
    layers: usize,
    kv_heads: usize,
    head_dim: usize,
    thresholds: ThresholdTable,
    rotations: RotationTable,
    users: Vec<UserStore>,
    dcc: DccSim,
    buffers: ResponseBufferTable,
    bytes_used: usize,
}

/// Result of one offload: the response descriptor plus its timing.
#[derive(Debug, Clone)]
pub struct OffloadOutcome {
    /// Retrieved top-k hits per head per query.
    pub response: ResponseDescriptor,
    /// DCC/NMA/CXL timing.
    pub timing: RequestTiming,
    /// True survivors dropped by injected PFU bitmap corruption (recall
    /// loss); zero on the fault-free path.
    pub false_negatives: usize,
    /// Spurious survivors admitted by injected corruption (scored and
    /// usually ranked out); zero on the fault-free path.
    pub false_positives: usize,
}

impl DrexDevice {
    /// Creates a device for a model shape.
    ///
    /// # Panics
    ///
    /// Panics if the threshold table shape disagrees with `layers`/`kv_heads`.
    pub fn new(
        params: DrexParams,
        link: CxlLink,
        geometry: Geometry,
        thresholds: ThresholdTable,
        rotations: RotationTable,
        head_dim: usize,
    ) -> Self {
        let layers = thresholds.layers();
        let kv_heads = thresholds.kv_heads();
        let packages = geometry.packages;
        Self {
            geometry,
            layers,
            kv_heads,
            head_dim,
            thresholds,
            rotations,
            users: Vec::new(),
            dcc: DccSim::new(params, link, packages),
            buffers: ResponseBufferTable::new(),
            bytes_used: 0,
        }
    }

    /// Registers a new user, allocating its DCC Response Buffer, and returns
    /// its ID.
    ///
    /// # Panics
    ///
    /// Panics beyond 512 concurrent users (the Response Buffer / Polling
    /// Register capacity, §7.2).
    pub fn register_user(&mut self) -> u32 {
        let id = self.users.len() as u32;
        self.buffers
            .map_user(id)
            .expect("at most 512 concurrent users (Response Buffer capacity)");
        self.users.push(UserStore {
            heads: (0..self.layers * self.kv_heads)
                .map(|_| HeadStore::new(self.head_dim))
                .collect(),
        });
        id
    }

    /// The DCC response-buffer table (CAM + Polling Register).
    pub fn response_buffers(&self) -> &ResponseBufferTable {
        &self.buffers
    }

    /// Bytes of device memory in use.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.geometry.total_bytes()
    }

    /// Number of keys stored for `(user, layer, kv_head)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn stored_keys(&self, user: u32, layer: usize, kv_head: usize) -> usize {
        self.users[user as usize].heads[layer * self.kv_heads + kv_head]
            .keys
            .len()
    }

    /// Reads a stored value vector (the GPU-side response read).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn value(&self, user: u32, layer: usize, kv_head: usize, index: usize) -> &[f32] {
        self.users[user as usize].heads[layer * self.kv_heads + kv_head]
            .values
            .get(index)
    }

    /// Writes a block of KV pairs for one head (the GPU flushes the staging
    /// window in groups of 128, §6). Keys/values are rounded to BF16; the
    /// Key Sign Object is built from the ITQ-rotated keys.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CapacityExceeded`] when the write would exceed
    /// the 512 GB device, [`DeviceError::UnknownUser`] for unregistered ids.
    ///
    /// # Panics
    ///
    /// Panics if any vector has the wrong dimension or `keys`/`values`
    /// lengths differ.
    pub fn write_kv_block(
        &mut self,
        user: u32,
        layer: usize,
        kv_head: usize,
        keys: &[Vec<f32>],
        values: &[Vec<f32>],
    ) -> Result<(), DeviceError> {
        assert_eq!(keys.len(), values.len(), "key/value count mismatch");
        if user as usize >= self.users.len() {
            return Err(DeviceError::UnknownUser(user));
        }
        let add = ObjectFootprint::for_keys(keys.len(), self.head_dim).total();
        if self.bytes_used + add > self.capacity() {
            return Err(DeviceError::CapacityExceeded {
                needed: add,
                available: self.capacity() - self.bytes_used,
            });
        }
        let rotation = self.rotations.get(layer, kv_head).clone();
        let store = &mut self.users[user as usize].heads[layer * self.kv_heads + kv_head];
        for (k, v) in keys.iter().zip(values) {
            let mut kq = k.clone();
            quantize_bf16_in_place(&mut kq);
            let mut vq = v.clone();
            quantize_bf16_in_place(&mut vq);
            rotation.signs_into(&kq, &mut store.signs);
            store.keys.push(&kq);
            store.values.push(&vq);
        }
        self.bytes_used += add;
        Ok(())
    }

    /// Executes one sparse-attention offload: SCF filter, full-precision
    /// scoring, per-query top-k — over all KV heads of `layer` for `user`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownUser`] for unregistered users.
    ///
    /// # Panics
    ///
    /// Panics if `request.queries` does not have one group per KV head or a
    /// query has the wrong dimension.
    pub fn offload(
        &mut self,
        request: &RequestDescriptor,
        k: usize,
        arrival_ns: f64,
    ) -> Result<OffloadOutcome, DeviceError> {
        self.offload_with_faults(request, k, arrival_ns, &FaultInjector::disabled())
    }

    /// [`DrexDevice::offload`] under fault injection: PFU bitmap bit-flips
    /// corrupt the *functional* filter decisions — a flipped survivor is
    /// dropped before scoring (a false negative that costs recall), a
    /// flipped non-survivor is fetched and scored (a false positive that
    /// costs time and is usually ranked out). Flip decisions derive from
    /// `(inj.seed, user, layer, kv_head, key index)` alone, so the corrupted
    /// result is identical at any thread count; with a disabled injector
    /// this is exactly [`DrexDevice::offload`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownUser`] for unregistered users.
    ///
    /// # Panics
    ///
    /// Panics if `request.queries` does not have one group per KV head or a
    /// query has the wrong dimension.
    pub fn offload_with_faults(
        &mut self,
        request: &RequestDescriptor,
        k: usize,
        arrival_ns: f64,
        inj: &FaultInjector,
    ) -> Result<OffloadOutcome, DeviceError> {
        if request.user as usize >= self.users.len() {
            return Err(DeviceError::UnknownUser(request.user));
        }
        assert_eq!(
            request.queries.len(),
            self.kv_heads,
            "one query group per KV head required"
        );
        let layer = request.layer as usize;
        let user = &self.users[request.user as usize];
        let kv_heads = self.kv_heads;
        let layers = self.layers;
        let head_dim = self.head_dim;
        let geometry = &self.geometry;
        let rotations = &self.rotations;
        let thresholds = &self.thresholds;

        // Each KV head filters/scores/ranks against its own store — on the
        // real device these run on distinct NMAs concurrently. The parallel
        // map keeps results in head order, so response hits and the timing
        // workload are bit-identical to the serial loop.
        let per_head = longsight_exec::deterministic_map(&request.queries, |kv_head, group| {
            let store = &user.heads[layer * kv_heads + kv_head];
            let rotation: &ItqRotation = rotations.get(layer, kv_head);
            let threshold = thresholds.get(layer, kv_head);
            let n = store.keys.len();

            // Injected PFU bitmap corruption: one deterministic draw decides
            // whether this head's bitmap is corrupted, then a fixed per-index
            // draw picks the flipped filter decisions. The flips apply to the
            // shared bitmap, i.e. to every query in the group alike.
            let pfu_stream = longsight_faults::stream(
                domain::PFU,
                request.user as u64,
                layer as u64,
                kv_head as u64,
            );
            let flips: Option<Vec<bool>> = if inj.is_enabled()
                && inj.profile.bitflip_rate > 0.0
                && inj.uniform(pfu_stream, 0) < inj.profile.bitflip_rate
            {
                let frac = inj.profile.bitflip_flip_fraction;
                Some(
                    (0..n)
                        .map(|i| inj.uniform(pfu_stream, 1 + i as u64) < frac)
                        .collect(),
                )
            } else {
                None
            };
            let mut false_negatives = 0usize;
            let mut false_positives = 0usize;

            let mut per_query = Vec::with_capacity(group.len());
            // Union of surviving keys across the group: what the hardware
            // actually fetches (the PFU produces one bitmap per block for
            // the whole query batch).
            let mut union_survivors = 0usize;
            let mut union_mask = vec![false; n];
            for q in group {
                assert_eq!(q.len(), head_dim, "query dimension mismatch");
                let q_signs = rotation.signs(q);
                let mut top = TopK::new(k);
                // One PFU epoch per 128-key block off the packed arena; the
                // fault-injected flips are applied to the resulting bitmap
                // per key, exactly as the per-key scan counted them.
                let mut block = 0usize;
                while block < n {
                    let block_end = (block + PFU_BLOCK_KEYS).min(n);
                    let bitmap =
                        filter_block_packed(&q_signs, &store.signs, block..block_end, threshold);
                    for i in block..block_end {
                        let mut pass = bitmap >> (i - block) & 1 == 1;
                        if let Some(fl) = &flips {
                            if fl[i] {
                                if pass {
                                    false_negatives += 1;
                                } else {
                                    false_positives += 1;
                                }
                                pass = !pass;
                            }
                        }
                        if pass {
                            if !union_mask[i] {
                                union_mask[i] = true;
                                union_survivors += 1;
                            }
                            let s = vecops::dot(q, store.keys.get(i));
                            top.push(s, i);
                        }
                    }
                    block = block_end;
                }
                per_query.push(
                    top.into_sorted_vec()
                        .into_iter()
                        .map(|s| TopHit {
                            index: s.index,
                            score: s.score,
                        })
                        .collect::<Vec<_>>(),
                );
            }

            // Timing workload for this head.
            let plan = UserPartition::plan(
                geometry,
                kv_heads,
                layers,
                head_dim,
                n,
                request.user as usize * kv_heads,
            );
            let slice_packages: Vec<usize> =
                plan.slices[kv_head].iter().map(|s| s.package).collect();
            let work = HeadWork {
                spec: HeadOffloadSpec {
                    context_len: n,
                    head_dim,
                    queries: group.len(),
                    k,
                    survivors: union_survivors,
                },
                slice_packages: if n == 0 { vec![0] } else { slice_packages },
            };
            (per_query, work, false_negatives, false_positives)
        });
        let mut hits = Vec::with_capacity(kv_heads);
        let mut head_work = Vec::with_capacity(kv_heads);
        let mut false_negatives = 0usize;
        let mut false_positives = 0usize;
        for (per_query, work, fneg, fpos) in per_head {
            hits.push(per_query);
            head_work.push(work);
            false_negatives += fneg;
            false_positives += fpos;
        }

        let response = ResponseDescriptor {
            hits,
            head_dim: self.head_dim,
        };
        let timing = self
            .dcc
            .submit(arrival_ns, &head_work, request.bytes(), response.bytes());
        // Completion posted to the user's Response Buffer; the GPU's poll
        // (already folded into `timing.observed_ns`) clears it.
        self.buffers
            .post_completion(request.user)
            .expect("registered users have buffers");
        Ok(OffloadOutcome {
            response,
            timing,
            false_negatives,
            false_positives,
        })
    }

    /// [`DrexDevice::offload_with_faults`] that also emits the request's
    /// span tree on a `drex.device` track: the enclosing `drex.request` span
    /// (descriptor arrival to GPU-observed completion) with `dcc.queue`,
    /// `nma.head` (critical chain), and `cxl.value_read` children, plus the
    /// functional corruption counts as span arguments. Recording derives
    /// entirely from the returned timing, so the outcome is bit-identical to
    /// the untraced call.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownUser`] for unregistered users.
    pub fn offload_traced(
        &mut self,
        request: &RequestDescriptor,
        k: usize,
        arrival_ns: f64,
        inj: &FaultInjector,
        rec: &mut Recorder,
    ) -> Result<OffloadOutcome, DeviceError> {
        let out = self.offload_with_faults(request, k, arrival_ns, inj)?;
        if rec.is_enabled() {
            let t = &out.timing;
            let track = rec.track("drex.device");
            let span = rec.open_with(
                track,
                "drex.request",
                arrival_ns,
                &[
                    ("user", ArgVal::U(u64::from(request.user))),
                    ("layer", ArgVal::U(u64::from(request.layer))),
                    ("false_negatives", ArgVal::U(out.false_negatives as u64)),
                    ("false_positives", ArgVal::U(out.false_positives as u64)),
                ],
            );
            if t.queue_wait_ns > 0.0 {
                rec.leaf(
                    track,
                    "dcc.queue",
                    t.submitted_ns,
                    t.submitted_ns + t.queue_wait_ns,
                );
            }
            let chain = t.critical_head.total_ns();
            rec.leaf_with(
                track,
                "nma.head",
                t.device_done_ns - chain,
                t.device_done_ns,
                &[
                    ("filter_ns", ArgVal::F(t.critical_head.filter_ns)),
                    ("fetch_score_ns", ArgVal::F(t.critical_head.fetch_score_ns)),
                ],
            );
            rec.leaf(
                track,
                "cxl.value_read",
                t.observed_ns - t.value_read_ns,
                t.observed_ns,
            );
            rec.close(span, t.observed_ns);
        }
        Ok(out)
    }

    /// Maximum context slice size (re-exported convenience).
    pub const MAX_SLICE_KEYS: usize = MAX_CONTEXT_SLICE_KEYS;
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsight_tensor::{SignBits, SimRng};

    fn device(threshold: u32) -> DrexDevice {
        DrexDevice::new(
            DrexParams::paper(),
            CxlLink::pcie5_x16(),
            Geometry::drex(),
            ThresholdTable::uniform(1, 2, threshold),
            RotationTable::identity(1, 2, 16),
            16,
        )
    }

    fn fill(dev: &mut DrexDevice, user: u32, n: usize, rng: &mut SimRng) {
        for head in 0..2 {
            let keys: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(16)).collect();
            let vals: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(16)).collect();
            dev.write_kv_block(user, 0, head, &keys, &vals).unwrap();
        }
    }

    #[test]
    fn offload_matches_reference_pipeline() {
        let mut rng = SimRng::seed_from(1);
        let mut dev = device(6);
        let u = dev.register_user();
        fill(&mut dev, u, 300, &mut rng);

        let q = rng.normal_vec(16);
        let req = RequestDescriptor {
            user: u,
            layer: 0,
            queries: vec![vec![q.clone()], vec![q.clone()]],
        };
        let out = dev.offload(&req, 8, 0.0).unwrap();

        // Reference: same pipeline by hand for head 0 (BF16 keys, identity
        // rotation, threshold 6).
        let q_signs = SignBits::from_slice(&q);
        let mut expected = TopK::new(8);
        for i in 0..300 {
            // Reconstruct the BF16-rounded key through the device's store.
            let stored = dev.users[u as usize].heads[0].keys.get(i);
            if q_signs.concordance(&SignBits::from_slice(stored)) >= 6 {
                expected.push(vecops::dot(&q, stored), i);
            }
        }
        let want: Vec<usize> = expected.into_sorted_vec().iter().map(|s| s.index).collect();
        let got: Vec<usize> = out.response.hits[0][0].iter().map(|h| h.index).collect();
        assert_eq!(
            got, want,
            "device must match the reference pipeline exactly"
        );
        assert!(out.timing.observed_ns > 0.0);
    }

    #[test]
    fn threshold_zero_retrieves_global_topk() {
        let mut rng = SimRng::seed_from(2);
        let mut dev = device(0);
        let u = dev.register_user();
        fill(&mut dev, u, 200, &mut rng);
        let q = rng.normal_vec(16);
        let req = RequestDescriptor {
            user: u,
            layer: 0,
            queries: vec![vec![q.clone()], vec![q.clone()]],
        };
        let out = dev.offload(&req, 200, 0.0).unwrap();
        // k >= n and threshold 0: every key retrieved.
        assert_eq!(out.response.hits[0][0].len(), 200);
        // Scores descending.
        let s: Vec<f32> = out.response.hits[0][0].iter().map(|h| h.score).collect();
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn injected_bitflips_corrupt_retrieval_deterministically() {
        use longsight_faults::{FaultInjector, FaultProfile};
        let mut rng = SimRng::seed_from(4);
        let mut dev = device(6);
        let u = dev.register_user();
        fill(&mut dev, u, 400, &mut rng);
        let q = rng.normal_vec(16);
        let req = RequestDescriptor {
            user: u,
            layer: 0,
            queries: vec![vec![q.clone()], vec![q.clone()]],
        };
        // Disabled injector reproduces the plain offload exactly.
        let plain = dev.clone().offload(&req, 16, 0.0).unwrap();
        let off = dev
            .clone()
            .offload_with_faults(&req, 16, 0.0, &FaultInjector::disabled())
            .unwrap();
        assert_eq!(off.response.hits, plain.response.hits);
        assert_eq!((off.false_negatives, off.false_positives), (0, 0));
        // A certain corruption with a large flip fraction changes results
        // and counts both error directions — identically across two runs.
        let inj = FaultInjector::new(
            FaultProfile {
                bitflip_rate: 1.0,
                bitflip_flip_fraction: 0.25,
                ..FaultProfile::disabled()
            },
            21,
        );
        let a = dev
            .clone()
            .offload_with_faults(&req, 16, 0.0, &inj)
            .unwrap();
        let b = dev
            .clone()
            .offload_with_faults(&req, 16, 0.0, &inj)
            .unwrap();
        assert_eq!(a.response.hits, b.response.hits);
        assert_eq!(
            (a.false_negatives, a.false_positives),
            (b.false_negatives, b.false_positives)
        );
        assert!(a.false_negatives + a.false_positives > 0);
        assert_ne!(
            a.response.hits, plain.response.hits,
            "a 25% flip fraction must perturb the top-k"
        );
    }

    #[test]
    fn unknown_user_is_an_error() {
        let mut dev = device(0);
        let req = RequestDescriptor {
            user: 9,
            layer: 0,
            queries: vec![vec![], vec![]],
        };
        assert_eq!(
            dev.offload(&req, 4, 0.0).unwrap_err(),
            DeviceError::UnknownUser(9)
        );
        assert!(dev.write_kv_block(3, 0, 0, &[], &[]).is_err());
    }

    #[test]
    fn capacity_accounting_rejects_overflow() {
        let mut dev = DrexDevice::new(
            DrexParams::paper(),
            CxlLink::pcie5_x16(),
            // A tiny 1-bank geometry to make overflow reachable.
            Geometry {
                packages: 1,
                channels: 1,
                banks: 1,
                rows: 2,
                cols: 64,
                col_bytes: 32,
            },
            ThresholdTable::zeros(1, 1),
            RotationTable::identity(1, 1, 16),
            16,
        );
        let u = dev.register_user();
        let keys: Vec<Vec<f32>> = (0..128).map(|_| vec![0.5; 16]).collect();
        let vals = keys.clone();
        // Capacity is 4 KiB; each 128-key block needs 128·(2+32+32) = 8.4 KB.
        let err = dev.write_kv_block(u, 0, 0, &keys, &vals).unwrap_err();
        assert!(matches!(err, DeviceError::CapacityExceeded { .. }));
    }

    #[test]
    fn values_round_trip_at_bf16_precision() {
        let mut dev = device(0);
        let u = dev.register_user();
        let k = vec![vec![0.123456f32; 16]];
        let v = vec![vec![1.0 + 1e-4f32; 16]];
        dev.write_kv_block(u, 0, 0, &k, &v).unwrap();
        // BF16 rounding: 1.0 + 1e-4 → 1.0.
        assert_eq!(dev.value(u, 0, 0, 0)[0], 1.0);
        assert_eq!(dev.stored_keys(u, 0, 0), 1);
    }
}
