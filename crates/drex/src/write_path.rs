//! KV ingest path timing (paper §6).
//!
//! The GPU accumulates newly generated KV pairs in its HBM staging window
//! and flushes them to DReX in groups of 128: one CXL bulk write carrying
//! the Key Sign Object, Key Object, and Value Object, which the device
//! commits to LPDDR as streaming row writes. Flushing happens off the
//! decode critical path; this model verifies the bandwidth headroom that
//! claim needs.

use crate::layout::ObjectFootprint;
use longsight_cxl::CxlLink;
use longsight_dram::{ChannelSim, DramTiming, Request};

/// Timing of one KV block flush.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvWriteTiming {
    /// CXL transfer time for the block's objects, ns.
    pub cxl_ns: f64,
    /// LPDDR commit time (channel-interleaved streaming writes), ns.
    pub dram_ns: f64,
}

impl KvWriteTiming {
    /// End-to-end flush latency (transfer then commit; not pipelined within
    /// a single block).
    pub fn total_ns(&self) -> f64 {
        self.cxl_ns + self.dram_ns
    }
}

/// Times the flush of one `block_keys`-KV group for a single head.
///
/// Keys/values are interleaved across the package's 8 channels exactly like
/// reads (§7.3.2), so the commit simulates one representative channel with
/// `1/8` of the write bursts.
pub fn time_kv_block_write(
    dram: &DramTiming,
    link: &CxlLink,
    block_keys: usize,
    head_dim: usize,
) -> KvWriteTiming {
    let bytes = ObjectFootprint::for_keys(block_keys, head_dim).total();
    let cxl_ns = link.transfer_ns(bytes);

    let bursts_total = bytes.div_ceil(dram.burst_bytes);
    let per_channel = bursts_total.div_ceil(8);
    let cols = dram.cols_per_row();
    let reqs: Vec<Request> = (0..per_channel)
        .map(|i| Request {
            bank: (i / cols) % 4, // blocks stream into a few open banks
            row: i / (cols * 4),
            col: i % cols,
            is_write: true,
            arrival: 0.0,
        })
        .collect();
    let mut sim = ChannelSim::new(dram.clone(), 8);
    let dram_ns = sim.run(&reqs).iter().map(|c| c.finish).fold(0.0, f64::max);

    KvWriteTiming { cxl_ns, dram_ns }
}

/// Sustained KV ingest bandwidth in tokens/second for one head when flushing
/// `block_keys`-sized groups back to back.
pub fn sustained_ingest_tokens_per_sec(
    dram: &DramTiming,
    link: &CxlLink,
    block_keys: usize,
    head_dim: usize,
) -> f64 {
    let t = time_kv_block_write(dram, link, block_keys, head_dim);
    // CXL transfer of block N+1 overlaps the DRAM commit of block N.
    let per_block = t.cxl_ns.max(t.dram_ns);
    block_keys as f64 * 1e9 / per_block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_write_costs_are_ordered() {
        let dram = DramTiming::lpddr5x_8533();
        let link = CxlLink::pcie5_x16();
        let small = time_kv_block_write(&dram, &link, 128, 128);
        let big = time_kv_block_write(&dram, &link, 1024, 128);
        assert!(big.total_ns() > small.total_ns());
        assert!(small.cxl_ns > 0.0 && small.dram_ns > 0.0);
    }

    #[test]
    fn ingest_keeps_up_with_generation() {
        // §6's premise: per generated token each head adds one KV pair; at
        // hundreds of tokens/s per user the flush path must be orders of
        // magnitude faster than generation.
        let dram = DramTiming::lpddr5x_8533();
        let link = CxlLink::pcie5_x16();
        let tps = sustained_ingest_tokens_per_sec(&dram, &link, 128, 128);
        assert!(
            tps > 1e6,
            "per-head ingest must exceed a million tokens/s, got {tps:.0}"
        );
    }

    #[test]
    fn bulk_flushes_beat_per_token_flushes() {
        // §6 benefit 3: accumulating a group of KVs before transfer reduces
        // communication overhead vs one KV per generated token.
        let dram = DramTiming::lpddr5x_8533();
        let link = CxlLink::pcie5_x16();
        let per_token: f64 = (0..128)
            .map(|_| time_kv_block_write(&dram, &link, 1, 128).total_ns())
            .sum();
        let bulk = time_kv_block_write(&dram, &link, 128, 128).total_ns();
        assert!(
            per_token > 3.0 * bulk,
            "bulk flush should amortize per-transfer latency: {per_token} vs {bulk}"
        );
    }
}
