//! The DReX compute-enabled CXL memory expander (paper §7), repurposed for
//! sparse attention.
//!
//! * [`layout`] — Key Blocks, Context Slices, Multi-Layer Context Slices,
//!   and User Partitions (§7.3), plus capacity planning,
//! * `offload` — PFU/NMA offload timing driven by the
//!   LPDDR5X simulator and the paper's RTL constants (§7.4, §8.2),
//! * [`DccSim`] — the DReX CXL Controller: request queue, NMA scheduling,
//!   response buffers, polling (§7.2),
//! * [`DrexDevice`] — the functional device: per-head vector databases with
//!   exact filter → score → rank semantics at BF16 precision,
//! * [`PowerModel`] — §9.4 power and area figures.
//!
//! # Example
//!
//! ```
//! use longsight_core::{RotationTable, ThresholdTable};
//! use longsight_cxl::CxlLink;
//! use longsight_dram::Geometry;
//! use longsight_drex::{DrexDevice, DrexParams, RequestDescriptor};
//!
//! let mut dev = DrexDevice::new(
//!     DrexParams::paper(),
//!     CxlLink::pcie5_x16(),
//!     Geometry::drex(),
//!     ThresholdTable::zeros(1, 1),
//!     RotationTable::identity(1, 1, 8),
//!     8,
//! );
//! let user = dev.register_user();
//! dev.write_kv_block(user, 0, 0, &[vec![1.0; 8]], &[vec![2.0; 8]])?;
//! let req = RequestDescriptor { user, layer: 0, queries: vec![vec![vec![1.0; 8]]] };
//! let out = dev.offload(&req, 4, 0.0)?;
//! assert_eq!(out.response.hits[0][0].len(), 1);
//! # Ok::<(), longsight_drex::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcc;
mod descriptor;
mod device;
mod id_address;
pub mod layout;
mod offload;
mod power;
mod response_buffers;
pub mod spm;
mod write_path;

pub use dcc::{DccSim, HeadWork, RequestTiming, SpecSlotPool};
pub use descriptor::{
    RequestDescriptor, ResponseDescriptor, TopHit, POLLING_REGISTER_BITS, REQUEST_QUEUE_DEPTH,
};
pub use device::{DeviceError, DrexDevice, OffloadOutcome};
pub use id_address::IdAddress;
pub use offload::{
    slice_layout, time_head_offload, time_head_offload_injected, time_slice_offload,
    try_time_slice_offload, try_time_slice_offload_injected, try_time_slice_offload_traced,
    DrexParams, FaultedHeadTiming, FaultedSliceTiming, HeadOffloadSpec, HeadOffloadTiming,
    SliceWork,
};
pub use power::PowerModel;
pub use response_buffers::{BufferError, ResponseBufferTable};
pub use write_path::{sustained_ingest_tokens_per_sec, time_kv_block_write, KvWriteTiming};
