//! DCC Response Buffers, Polling Register, and the user→buffer CAM
//! (paper §7.2).
//!
//! > "DCC populates a corresponding Response Buffer indexed to the user. To
//! > manage these buffers, DCC maintains a mapping table — implemented as a
//! > content-addressable memory (CAM) — that associates each User ID with a
//! > specific Response Buffer and Polling Register entry. The GPU reads this
//! > mapping once and uses it throughout the generation phase."

use crate::descriptor::POLLING_REGISTER_BITS;

/// Errors from buffer management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// All 512 response buffers are allocated.
    Exhausted,
    /// The user has no buffer allocated.
    Unmapped(u32),
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::Exhausted => write!(f, "all response buffers allocated"),
            BufferError::Unmapped(u) => write!(f, "user {u} has no response buffer"),
        }
    }
}

impl std::error::Error for BufferError {}

/// The DCC's response-buffer manager: a CAM from User ID to buffer slot plus
/// the 512-bit Polling Register (one completion bit per slot).
#[derive(Debug, Clone)]
pub struct ResponseBufferTable {
    /// CAM entries: `cam[slot] = Some(user)`.
    cam: Vec<Option<u32>>,
    /// Completion bits (the Polling Register).
    polling: Vec<bool>,
}

impl ResponseBufferTable {
    /// A table with the hardware's 512 buffers.
    pub fn new() -> Self {
        Self {
            cam: vec![None; POLLING_REGISTER_BITS],
            polling: vec![false; POLLING_REGISTER_BITS],
        }
    }

    /// Number of allocated slots.
    pub fn allocated(&self) -> usize {
        self.cam.iter().filter(|e| e.is_some()).count()
    }

    /// Allocates (or returns the existing) buffer slot for `user` — the
    /// mapping the GPU "reads once and uses throughout generation".
    ///
    /// # Errors
    ///
    /// [`BufferError::Exhausted`] when all 512 slots are taken.
    pub fn map_user(&mut self, user: u32) -> Result<usize, BufferError> {
        if let Some(slot) = self.lookup(user) {
            return Ok(slot);
        }
        match self.cam.iter().position(Option::is_none) {
            Some(slot) => {
                self.cam[slot] = Some(user);
                self.polling[slot] = false;
                Ok(slot)
            }
            None => Err(BufferError::Exhausted),
        }
    }

    /// CAM lookup: the slot currently assigned to `user`.
    pub fn lookup(&self, user: u32) -> Option<usize> {
        self.cam.iter().position(|&e| e == Some(user))
    }

    /// Marks `user`'s offload complete (sets its Polling Register bit).
    ///
    /// # Errors
    ///
    /// [`BufferError::Unmapped`] when the user has no slot.
    pub fn post_completion(&mut self, user: u32) -> Result<(), BufferError> {
        let slot = self.lookup(user).ok_or(BufferError::Unmapped(user))?;
        self.polling[slot] = true;
        Ok(())
    }

    /// The GPU's poll: reads (and clears) the completion bit for a slot.
    pub fn poll_and_clear(&mut self, slot: usize) -> bool {
        let was = self.polling[slot];
        self.polling[slot] = false;
        was
    }

    /// Snapshot of the 512-bit Polling Register as words (what a single
    /// MMIO read returns).
    pub fn polling_register(&self) -> [u64; POLLING_REGISTER_BITS / 64] {
        let mut words = [0u64; POLLING_REGISTER_BITS / 64];
        for (i, &bit) in self.polling.iter().enumerate() {
            if bit {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    /// Releases a user's slot (end of generation session).
    pub fn release(&mut self, user: u32) {
        if let Some(slot) = self.lookup(user) {
            self.cam[slot] = None;
            self.polling[slot] = false;
        }
    }
}

impl Default for ResponseBufferTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_stable_across_repeated_requests() {
        let mut t = ResponseBufferTable::new();
        let a = t.map_user(7).unwrap();
        let b = t.map_user(7).unwrap();
        assert_eq!(a, b, "a user keeps its buffer across the generation phase");
        assert_eq!(t.allocated(), 1);
    }

    #[test]
    fn distinct_users_get_distinct_slots() {
        let mut t = ResponseBufferTable::new();
        let a = t.map_user(1).unwrap();
        let b = t.map_user(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn capacity_is_512_users() {
        let mut t = ResponseBufferTable::new();
        for u in 0..512 {
            t.map_user(u).unwrap();
        }
        assert_eq!(t.map_user(512).unwrap_err(), BufferError::Exhausted);
        t.release(100);
        assert!(t.map_user(512).is_ok(), "released slots are reusable");
    }

    #[test]
    fn polling_register_reflects_completions() {
        let mut t = ResponseBufferTable::new();
        let slot = t.map_user(3).unwrap();
        assert!(!t.poll_and_clear(slot));
        t.post_completion(3).unwrap();
        let words = t.polling_register();
        assert_eq!(words[slot / 64] >> (slot % 64) & 1, 1);
        assert!(t.poll_and_clear(slot));
        assert!(!t.poll_and_clear(slot), "poll clears the bit");
    }

    #[test]
    fn completion_for_unmapped_user_errors() {
        let mut t = ResponseBufferTable::new();
        assert_eq!(t.post_completion(9).unwrap_err(), BufferError::Unmapped(9));
    }
}
