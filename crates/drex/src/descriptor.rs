//! Request/response descriptors and MMIO register formats (paper §7.2–7.3).

/// Hardware queue depth of the DCC Request Queue (= max batch of 512 users).
pub const REQUEST_QUEUE_DEPTH: usize = 512;

/// Width of the Polling Register in bits (one completion bit per buffer).
pub const POLLING_REGISTER_BITS: usize = 512;

/// A sparse-attention request submitted by the GPU (§7.3.1): user id, layer,
/// and the query vectors of every query head.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestDescriptor {
    /// User ID.
    pub user: u32,
    /// Decoder layer.
    pub layer: u32,
    /// Post-RoPE query vectors, `queries[kv_head][group_member]`.
    pub queries: Vec<Vec<Vec<f32>>>,
}

impl RequestDescriptor {
    /// Wire size in bytes: header + BF16 query payload.
    pub fn bytes(&self) -> usize {
        let payload: usize = self
            .queries
            .iter()
            .flat_map(|g| g.iter())
            .map(|q| q.len() * 2)
            .sum();
        8 + payload
    }

    /// Total query vectors carried.
    pub fn query_count(&self) -> usize {
        self.queries.iter().map(Vec::len).sum()
    }
}

/// One retrieved key: its token index and raw dot-product score
/// (the GPU applies softmax over these together with the dense window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopHit {
    /// Token position within the user's context.
    pub index: usize,
    /// Raw `q·k` score.
    pub score: f32,
}

/// Response for one request: per KV head, per query-group member, the top-k
/// hits; value vectors are read from the Response Buffer alongside.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResponseDescriptor {
    /// `hits[kv_head][group_member]` sorted by descending score.
    pub hits: Vec<Vec<Vec<TopHit>>>,
    /// Head dimension (for size accounting).
    pub head_dim: usize,
}

impl ResponseDescriptor {
    /// Wire size: per hit, a BF16 value vector + 4 B score + 4 B index.
    pub fn bytes(&self) -> usize {
        let n: usize = self.hits.iter().flat_map(|h| h.iter()).map(Vec::len).sum();
        n * (self.head_dim * 2 + 8)
    }

    /// Worst-case response size for sizing the Response Buffers:
    /// `k` hits × heads × queries-per-head.
    pub fn max_bytes(kv_heads: usize, group: usize, k: usize, head_dim: usize) -> usize {
        kv_heads * group * k * (head_dim * 2 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_bytes_counts_bf16_queries() {
        let r = RequestDescriptor {
            user: 1,
            layer: 2,
            queries: vec![vec![vec![0.0; 128]; 4]; 8],
        };
        assert_eq!(r.query_count(), 32);
        assert_eq!(r.bytes(), 8 + 32 * 128 * 2);
    }

    #[test]
    fn response_bytes_scale_with_hits() {
        let mut resp = ResponseDescriptor {
            hits: vec![
                vec![
                    vec![
                        TopHit {
                            index: 0,
                            score: 1.0
                        };
                        10
                    ];
                    2
                ];
                3
            ],
            head_dim: 64,
        };
        assert_eq!(resp.bytes(), 3 * 2 * 10 * (128 + 8));
        resp.hits[0][0].clear();
        assert_eq!(resp.bytes(), (3 * 2 * 10 - 10) * (128 + 8));
    }

    #[test]
    fn queue_constants_match_paper() {
        assert_eq!(REQUEST_QUEUE_DEPTH, 512);
        assert_eq!(POLLING_REGISTER_BITS, 512);
    }
}
