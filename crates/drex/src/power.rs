//! Power and area model (paper §9.4).
//!
//! LongSight reuses DReX's PFUs unmodified and only slightly enlarges the
//! NMA scratchpads, so the power/area profile matches the DReX paper:
//! 18.7 W peak per LPDDR5X package, 6.7 % PFU area overhead on the DRAM die,
//! 15.1 mm² and 1.072 W per 16 nm NMA, ≈158.2 W total for the device.

/// Power/area constants of one DReX unit.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Peak power of one PIM-enabled LPDDR5X package, watts.
    pub package_peak_w: f64,
    /// Number of LPDDR5X packages.
    pub packages: usize,
    /// PFU area overhead relative to the DRAM die area.
    pub pfu_area_overhead: f64,
    /// Area of one NMA chip (16 nm), mm².
    pub nma_area_mm2: f64,
    /// Peak power of one NMA, watts.
    pub nma_peak_w: f64,
    /// Number of NMAs.
    pub nmas: usize,
}

impl PowerModel {
    /// The paper's §9.4 figures.
    pub fn paper() -> Self {
        Self {
            package_peak_w: 18.7,
            packages: 8,
            pfu_area_overhead: 0.067,
            nma_area_mm2: 15.1,
            nma_peak_w: 1.072,
            nmas: 8,
        }
    }

    /// Total peak power of the DReX unit, watts.
    pub fn total_peak_w(&self) -> f64 {
        self.package_peak_w * self.packages as f64 + self.nma_peak_w * self.nmas as f64
    }

    /// Total NMA silicon area, mm².
    pub fn total_nma_area_mm2(&self) -> f64 {
        self.nma_area_mm2 * self.nmas as f64
    }

    /// Energy for a device busy interval, joules (peak-power upper bound).
    pub fn energy_upper_bound_j(&self, busy_ns: f64) -> f64 {
        self.total_peak_w() * busy_ns * 1e-9
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_peak_power_matches_paper() {
        // 8 × 18.7 + 8 × 1.072 = 149.6 + 8.576 = 158.176 ≈ 158.2 W (§9.4).
        let p = PowerModel::paper();
        assert!(
            (p.total_peak_w() - 158.2).abs() < 0.1,
            "got {}",
            p.total_peak_w()
        );
    }

    #[test]
    fn nma_area_total() {
        let p = PowerModel::paper();
        assert!((p.total_nma_area_mm2() - 120.8).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_time() {
        let p = PowerModel::paper();
        let e1 = p.energy_upper_bound_j(1_000_000.0); // 1 ms
        assert!((e1 - 0.158176).abs() < 1e-6);
        assert_eq!(p.energy_upper_bound_j(0.0), 0.0);
    }
}
