//! Per-head offload timing (paper §7.4, §8.2).
//!
//! An NMA serving one head's sparse attention alternates between in-memory
//! filtering epochs and near-memory scoring:
//!
//! 1. **Filter** — PFUs scan Key Sign Objects bank-parallel; bitmap
//!    generation takes `d × 1.25 ns` per epoch (one dimension per cycle,
//!    compared against up to 16 queries in parallel).
//! 2. **Bitmap read** — the NMA reads one 128-bit bitmap per participating
//!    bank (120.4 ns latency, pipelined across the package's 8 channels).
//! 3. **Address generation** — 1,024 ns per epoch in the NMA memory
//!    controller.
//! 4. **Fetch + score** — surviving full-precision keys stream out of LPDDR
//!    (channel-interleaved; timed by the DRAM simulator) into the NMA dot
//!    product units (26.11 TFLOP/s aggregate across 8 NMAs); the two overlap
//!    and the phase is bounded by the slower of the two.
//! 5. **Top-k** — pipelined partial top-k insertion (hardware max k = 1,024).

use crate::layout::{ContextSlice, MAX_CONTEXT_SLICE_KEYS};
use crate::spm::SpmConfig;
use longsight_dram::{ChannelSim, DramTiming, Request};
use longsight_faults::{domain, FaultError, FaultInjector};
use longsight_obs::{ArgVal, Recorder, TrackId};
use longsight_tensor::SimRng;

/// Device-wide hardware parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DrexParams {
    /// DRAM timing of the LPDDR5X channels.
    pub dram: DramTiming,
    /// Bitmap generation cost per key dimension, ns (RTL: 1.25 ns).
    pub pfu_dim_ns: f64,
    /// Bitmap read latency into the NMA, ns (RTL: 120.4 ns).
    pub bitmap_read_ns: f64,
    /// Address-generation overhead per epoch, ns (RTL: 1,024 ns).
    pub addr_gen_ns: f64,
    /// Per-NMA dot-product throughput, FLOPs per ns
    /// (26.11 TFLOP/s ÷ 8 NMAs = 3,264 FLOP/ns).
    pub nma_flops_per_ns: f64,
    /// Pipelined top-k insertion cost per surviving key, ns.
    pub topk_per_key_ns: f64,
    /// DCC cost per entry when merging partial per-slice top-k lists
    /// (`k` entries re-inserted per extra slice), ns.
    pub dcc_merge_per_entry_ns: f64,
    /// Maximum queries a PFU pass compares in parallel.
    pub pfu_query_batch: usize,
    /// Hardware top-k bound.
    pub max_k: usize,
    /// NMA scratchpad capacities (bounds survivor-address buffering).
    pub spm: SpmConfig,
}

impl DrexParams {
    /// The paper's configuration (§8.2, Table 2).
    pub fn paper() -> Self {
        Self {
            dram: DramTiming::lpddr5x_8533(),
            pfu_dim_ns: 1.25,
            bitmap_read_ns: 120.4,
            addr_gen_ns: 1024.0,
            nma_flops_per_ns: 26.11e3 / 8.0,
            topk_per_key_ns: 0.5,
            dcc_merge_per_entry_ns: 0.25,
            pfu_query_batch: 16,
            max_k: 1024,
            spm: SpmConfig::paper(),
        }
    }
}

/// Workload description for one head's offload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadOffloadSpec {
    /// Keys in the sparse (non-window) region for this head.
    pub context_len: usize,
    /// Key/query dimension.
    pub head_dim: usize,
    /// Queries in the GQA group sharing this head.
    pub queries: usize,
    /// Top-k budget.
    pub k: usize,
    /// Keys that survive SCF (exact when known, expected otherwise).
    pub survivors: usize,
}

/// Phase-by-phase timing of one head offload (one NMA's critical path).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HeadOffloadTiming {
    /// PFU filtering time, ns.
    pub filter_ns: f64,
    /// Bitmap read time, ns.
    pub bitmap_ns: f64,
    /// Address generation time, ns.
    pub addr_gen_ns: f64,
    /// Key fetch + dot-product phase (max of DRAM and compute), ns.
    pub fetch_score_ns: f64,
    /// Top-k ranking time, ns.
    pub topk_ns: f64,
}

impl HeadOffloadTiming {
    /// Total device-side latency.
    pub fn total_ns(&self) -> f64 {
        self.filter_ns + self.bitmap_ns + self.addr_gen_ns + self.fetch_score_ns + self.topk_ns
    }

    /// Element-wise accumulation (for summing sequential slices).
    pub fn accumulate(&mut self, other: &HeadOffloadTiming) {
        self.filter_ns += other.filter_ns;
        self.bitmap_ns += other.bitmap_ns;
        self.addr_gen_ns += other.addr_gen_ns;
        self.fetch_score_ns += other.fetch_score_ns;
        self.topk_ns += other.topk_ns;
    }

    /// Uniformly scales every phase by `factor` (a straggling NMA slows its
    /// whole pipeline: thermal throttling and refresh storms hit filtering,
    /// fetching, and ranking alike).
    pub fn scaled(&self, factor: f64) -> HeadOffloadTiming {
        HeadOffloadTiming {
            filter_ns: self.filter_ns * factor,
            bitmap_ns: self.bitmap_ns * factor,
            addr_gen_ns: self.addr_gen_ns * factor,
            fetch_score_ns: self.fetch_score_ns * factor,
            topk_ns: self.topk_ns * factor,
        }
    }

    /// Element-wise maximum (for parallel slices/heads on different NMAs).
    pub fn max_with(&self, other: &HeadOffloadTiming) -> HeadOffloadTiming {
        // The breakdown of a parallel composition is the breakdown of the
        // slower chain.
        if self.total_ns() >= other.total_ns() {
            *self
        } else {
            *other
        }
    }
}

/// Times a single Context Slice's offload on one NMA.
///
/// `slice_keys` of the head's region live in this slice; `survivors` of them
/// pass SCF. The survivor placement is synthesized uniformly at random
/// (seeded for reproducibility) — survivor *sparsity* is what drives the
/// row-hit behaviour the DRAM simulator measures.
///
/// # Panics
///
/// Panics if the spec is inconsistent (`survivors > slice_keys`,
/// `k > max_k`, zero dimensions). Fault-tolerant callers should use
/// [`try_time_slice_offload`] instead.
pub fn time_slice_offload(
    params: &DrexParams,
    spec: &HeadOffloadSpec,
    slice_keys: usize,
    survivors: usize,
    seed: u64,
) -> HeadOffloadTiming {
    match try_time_slice_offload(params, spec, slice_keys, survivors, seed) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// [`time_slice_offload`] with a typed error path: inconsistent specs come
/// back as [`FaultError::InvalidSpec`] instead of aborting, so injected
/// faults and bad inputs propagate as `Result`s through the serving stack.
///
/// # Errors
///
/// Returns [`FaultError::InvalidSpec`] when `survivors > slice_keys`,
/// `k > max_k`, `head_dim == 0`, or the slice exceeds the hardware slice
/// bound.
pub fn try_time_slice_offload(
    params: &DrexParams,
    spec: &HeadOffloadSpec,
    slice_keys: usize,
    survivors: usize,
    seed: u64,
) -> Result<HeadOffloadTiming, FaultError> {
    let mut rec = Recorder::disabled();
    let track = rec.track("nma");
    try_time_slice_offload_traced(
        params, spec, slice_keys, survivors, seed, &mut rec, track, 0.0,
    )
}

/// [`try_time_slice_offload`] that also emits the slice's phase spans on
/// `track`, anchored at simulated time `start_ns`: the serial
/// `pfu.filter → pfu.bitmap → nma.addr_gen → nma.fetch_score → nma.topk`
/// chain, with the sampled `dram.channel` activity nested inside the
/// fetch/score phase. With a disabled recorder this *is*
/// [`try_time_slice_offload`] — same numbers, no events — which is how the
/// zero-overhead guarantee holds.
///
/// # Errors
///
/// Same as [`try_time_slice_offload`].
// Mirrors `try_time_slice_offload` plus the three tracing inputs; a struct
// would just relocate the same names.
#[allow(clippy::too_many_arguments)]
pub fn try_time_slice_offload_traced(
    params: &DrexParams,
    spec: &HeadOffloadSpec,
    slice_keys: usize,
    survivors: usize,
    seed: u64,
    rec: &mut Recorder,
    track: TrackId,
    start_ns: f64,
) -> Result<HeadOffloadTiming, FaultError> {
    if spec.head_dim == 0 {
        return Err(FaultError::InvalidSpec("head_dim must be positive".into()));
    }
    if survivors > slice_keys {
        return Err(FaultError::InvalidSpec("more survivors than keys".into()));
    }
    if spec.k > params.max_k {
        return Err(FaultError::InvalidSpec(format!(
            "k {} beyond hardware limit",
            spec.k
        )));
    }
    if slice_keys > MAX_CONTEXT_SLICE_KEYS {
        return Err(FaultError::InvalidSpec("slice too large".into()));
    }
    if slice_keys == 0 {
        return Ok(HeadOffloadTiming::default());
    }

    let slice = ContextSlice::new(0, slice_keys);
    let d = spec.head_dim;

    // 1. Filter: PFUs across all banks in parallel; each bank processes its
    //    keys in 128-key epochs of d dimensions each. Query batches beyond
    //    the PFU width serialize.
    let epochs_per_bank = slice.keys_per_bank().div_ceil(128).max(1);
    let query_passes = spec.queries.div_ceil(params.pfu_query_batch).max(1);
    let filter_ns = epochs_per_bank as f64 * query_passes as f64 * d as f64 * params.pfu_dim_ns;

    // 2. Bitmap read: one bitmap per bank per epoch, pipelined per channel.
    let bitmaps_per_channel = (slice.banks_used() / 8).max(1) * epochs_per_bank;
    let bitmap_ns =
        params.bitmap_read_ns + (bitmaps_per_channel as f64 - 1.0) * params.dram.burst_ns;

    // 3. Address generation, once per epoch batch — plus one extra
    //    filter/drain alternation per Address-SPM overflow (§7.4: survivor
    //    addresses are staged in the Address SPM before fetching).
    let drain_passes = params.spm.drain_passes(survivors);
    let addr_gen_ns = params.addr_gen_ns * epochs_per_bank.max(drain_passes) as f64;

    // Phase spans: the slice pipeline is serial across phases, so each span
    // starts where the previous ended. Score is computed up front (it only
    // depends on the survivor count) so the fetch/score span can open before
    // the DRAM fetch simulation nests its channel activity inside it.
    let score_flops = (survivors * spec.queries * 2 * d) as f64;
    let score_ns = score_flops / params.nma_flops_per_ns;
    let mut at = start_ns;
    rec.leaf_with(
        track,
        "pfu.filter",
        at,
        at + filter_ns,
        &[
            ("epochs", ArgVal::U(epochs_per_bank as u64)),
            ("queries", ArgVal::U(spec.queries as u64)),
        ],
    );
    at += filter_ns;
    rec.leaf(track, "pfu.bitmap", at, at + bitmap_ns);
    at += bitmap_ns;
    rec.leaf(track, "nma.addr_gen", at, at + addr_gen_ns);
    at += addr_gen_ns;
    let fetch_score_span = rec.open_with(
        track,
        "nma.fetch_score",
        at,
        &[
            ("survivors", ArgVal::U(survivors as u64)),
            ("score_ns", ArgVal::F(score_ns)),
        ],
    );
    let fetch_start = at;

    // 4. Fetch + score. Keys are channel-interleaved: each survivor key is
    //    `2d` bytes spread across 8 channels. Simulate one representative
    //    channel with its share of the accesses.
    let key_bytes = 2 * d;
    let accesses_total = survivors * key_bytes.div_ceil(params.dram.burst_bytes).max(1);
    let per_channel = accesses_total.div_ceil(8);
    // Simulating every access is unnecessary beyond a few thousand: the
    // steady-state rate converges. Simulate a sample and extrapolate the
    // steady-state tail linearly.
    const SIM_CAP: usize = 4096;
    let fetch_ns = if per_channel == 0 {
        0.0
    } else {
        let simulated = per_channel.min(SIM_CAP);
        // Scale survivor positions so the simulated prefix preserves the
        // survivor *density* (which drives row locality).
        let sim_survivors = (survivors as f64 * simulated as f64 / per_channel as f64)
            .round()
            .max(1.0) as usize;
        let sim_keys = ((slice_keys as f64) * simulated as f64 / per_channel as f64)
            .round()
            .max(sim_survivors as f64) as usize;
        let mut rng = SimRng::seed_from(seed);
        let positions = survivor_positions(&mut rng, sim_keys, sim_survivors);
        // Per-channel key slice layout: 64 key-slices per row; keys grouped
        // 1,024 per bank-group.
        let keys_per_row = (params.dram.row_bytes / params.dram.burst_bytes).max(1);
        let mut sim = ChannelSim::new(params.dram.clone(), slice.bank_groups.max(1));
        let mut reqs: Vec<Request> = positions
            .iter()
            .take(simulated)
            .map(|&pos| {
                let bank = (pos / 1024).min(slice.bank_groups.saturating_sub(1));
                let within = pos % 1024;
                Request::read(bank, within / keys_per_row, within % keys_per_row)
            })
            .collect();
        // The NMA holds every survivor address in its Address SPM before
        // fetching (§7.4), so its memory controller issues them interleaved
        // across banks — bank-level parallelism hides row-activate latency.
        // Emit the trace round-robin over banks to model that.
        {
            let nbanks = slice.bank_groups.max(1);
            let mut by_bank: Vec<Vec<Request>> = vec![Vec::new(); nbanks];
            for r in reqs.drain(..) {
                by_bank[r.bank].push(r);
            }
            let mut i = 0;
            while reqs.len() < simulated.min(positions.len()) {
                let mut emitted = false;
                for b in by_bank.iter_mut() {
                    if i < b.len() {
                        reqs.push(b[i]);
                        emitted = true;
                    }
                }
                i += 1;
                if !emitted {
                    break;
                }
            }
        }
        let done = sim.run_traced(&reqs, rec, track, fetch_start);
        let sampled_ns = done.iter().map(|c| c.finish).fold(0.0, f64::max);
        sampled_ns * per_channel as f64 / simulated as f64
    };
    let fetch_score_ns = fetch_ns.max(score_ns);
    rec.close(fetch_score_span, fetch_start + fetch_score_ns);
    at += fetch_score_ns;

    // 5. Top-k insertion, pipelined.
    let topk_ns = survivors as f64 * params.topk_per_key_ns;
    rec.leaf_with(
        track,
        "nma.topk",
        at,
        at + topk_ns,
        &[("k", ArgVal::U(spec.k as u64))],
    );

    Ok(HeadOffloadTiming {
        filter_ns,
        bitmap_ns,
        addr_gen_ns,
        fetch_score_ns,
        topk_ns,
    })
}

/// Samples `sim_survivors` strictly increasing positions in
/// `[0, sim_keys)` via stride-jitter — the synthetic survivor placement
/// whose sparsity drives the row-hit behaviour the DRAM simulator measures.
///
/// Strict monotonicity matters: a raw jittered draw can land on the previous
/// survivor's position (e.g. stride 1.5: `⌊0·1.5+1.4⌋ = ⌊1·1.5+0.1⌋ = 1`),
/// which would fetch the same DRAM row twice while never simulating another
/// survivor. Each draw is therefore floored at `prev + 1` and capped at
/// `sim_keys − (sim_survivors − i)`, which leaves exactly enough headroom for
/// the remaining survivors — the floor can never exceed the cap, so every
/// position is distinct and in bounds.
///
/// Requires `1 <= sim_survivors <= sim_keys` (guaranteed by the sampling
/// setup in [`try_time_slice_offload_traced`]).
fn survivor_positions(rng: &mut SimRng, sim_keys: usize, sim_survivors: usize) -> Vec<usize> {
    debug_assert!(sim_survivors >= 1 && sim_survivors <= sim_keys);
    let mut positions = Vec::with_capacity(sim_survivors);
    let stride = sim_keys as f64 / sim_survivors as f64;
    let mut floor = 0usize;
    for i in 0..sim_survivors {
        let jitter = rng.uniform() * stride;
        let raw = ((i as f64 * stride + jitter) as usize).min(sim_keys - 1);
        let cap = sim_keys - (sim_survivors - i);
        let pos = raw.max(floor).min(cap);
        positions.push(pos);
        floor = pos + 1;
    }
    positions
}

/// A slice timing with its injected-fault annotations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultedSliceTiming {
    /// The (possibly straggler-inflated) phase timing.
    pub timing: HeadOffloadTiming,
    /// Whether this slice's NMA straggled.
    pub straggled: bool,
    /// True survivors dropped by a corrupted PFU bitmap (recall loss — the
    /// keys were filtered out and never scored).
    pub false_negatives: usize,
    /// Spurious survivors admitted by the corruption (fetched, scored, and
    /// ranked out — pure time cost, no recall effect).
    pub false_positives: usize,
}

/// Times one slice under fault injection.
///
/// `event_key` identifies this slice's offload (e.g. mixed from user, head,
/// and slice index with [`longsight_faults::stream`]); all fault decisions
/// derive from `(inj.seed, event_key)` alone, so the outcome is identical at
/// any thread count. Three fault classes apply:
///
/// * **PFU bit-flips** corrupt the filter bitmap: dropped true survivors are
///   reported as `false_negatives` for recall accounting, and spurious
///   survivors inflate the fetch/score/rank workload. For timing the
///   spurious keys are *added* to the survivor set (the dropped keys' fetch
///   savings are negligible at realistic flip fractions and ignoring them
///   keeps the timing monotone in the bit-flip rate).
/// * **Stragglers** scale the whole slice pipeline by the profile's
///   multiplier.
/// * **Hard timeouts**: when `timeout_ns` is finite and the faulted slice
///   exceeds it, the slice is killed and [`FaultError::SliceTimeout`] is
///   returned.
///
/// # Errors
///
/// [`FaultError::InvalidSpec`] for inconsistent specs,
/// [`FaultError::SliceTimeout`] when the slice exceeds `timeout_ns`.
// The argument list mirrors `try_time_slice_offload` plus the three fault
// inputs; bundling them into a struct would just move the same eight names.
#[allow(clippy::too_many_arguments)]
pub fn try_time_slice_offload_injected(
    params: &DrexParams,
    spec: &HeadOffloadSpec,
    slice_keys: usize,
    survivors: usize,
    seed: u64,
    inj: &FaultInjector,
    event_key: u64,
    timeout_ns: f64,
) -> Result<FaultedSliceTiming, FaultError> {
    let (false_negatives, false_positives) = inj.bitflips(
        longsight_faults::stream(domain::PFU, event_key, 0, 0),
        survivors,
        slice_keys,
    );
    let timed_survivors = (survivors + false_positives).min(slice_keys);
    let base = try_time_slice_offload(params, spec, slice_keys, timed_survivors, seed)?;
    let mult = inj.straggler_multiplier(longsight_faults::stream(domain::SLICE, event_key, 0, 0));
    let timing = base.scaled(mult);
    if timeout_ns.is_finite() && timing.total_ns() > timeout_ns {
        return Err(FaultError::SliceTimeout {
            elapsed_ns: timing.total_ns(),
            timeout_ns,
        });
    }
    Ok(FaultedSliceTiming {
        timing,
        straggled: mult > 1.0,
        false_negatives,
        false_positives,
    })
}

/// One slice's share of a head offload, as produced by [`slice_layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceWork {
    /// Keys stored in this slice.
    pub keys: usize,
    /// Survivors assigned to this slice (proportional share; the final
    /// slice absorbs the rounding remainder).
    pub survivors: usize,
    /// Seed for this slice's survivor-placement sampling.
    pub seed: u64,
}

/// Splits a head's sparse region into per-slice work items: each Context
/// Slice holds at most [`MAX_CONTEXT_SLICE_KEYS`] keys, survivors are
/// apportioned proportionally to slice size (rounded, clamped to the slice,
/// with the final slice absorbing the remainder), and each slice derives its
/// sampling seed from the head seed and its index.
///
/// This is the single source of truth for the slice recurrence —
/// [`time_head_offload`] and [`time_head_offload_injected`] both lay out
/// their slices here, so the faulted and plain paths cannot drift.
pub fn slice_layout(spec: &HeadOffloadSpec, seed: u64) -> Vec<SliceWork> {
    if spec.context_len == 0 {
        return Vec::new();
    }
    let slices = spec.context_len.div_ceil(MAX_CONTEXT_SLICE_KEYS);
    let mut layout = Vec::with_capacity(slices);
    let mut remaining = spec.context_len;
    let mut remaining_survivors = spec.survivors;
    for s in 0..slices {
        let keys = remaining.min(MAX_CONTEXT_SLICE_KEYS);
        // Proportional survivor share.
        let survivors = if s + 1 == slices {
            remaining_survivors
        } else {
            (spec.survivors as f64 * keys as f64 / spec.context_len as f64).round() as usize
        }
        .min(remaining_survivors)
        .min(keys);
        layout.push(SliceWork {
            keys,
            survivors,
            seed: seed ^ (s as u64) << 32,
        });
        remaining -= keys;
        remaining_survivors -= survivors;
    }
    layout
}

/// A head timing with fault annotations aggregated over its slices.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultedHeadTiming {
    /// Slowest-slice timing (slices run on parallel NMAs) plus the DCC
    /// top-k merge.
    pub timing: HeadOffloadTiming,
    /// Slices whose NMA straggled.
    pub straggled_slices: usize,
    /// Total survivors dropped by corrupted bitmaps across slices.
    pub false_negatives: usize,
    /// Total spurious survivors admitted across slices.
    pub false_positives: usize,
}

/// [`time_head_offload`] under fault injection: every slice is timed with
/// [`try_time_slice_offload_injected`] on its own event stream (derived from
/// `event_key` and the slice index), and the head fails if *any* slice times
/// out — a partial top-k merge is not a valid attention result.
///
/// # Errors
///
/// Propagates the first slice's [`FaultError`] in slice order (deterministic
/// regardless of evaluation order).
pub fn time_head_offload_injected(
    params: &DrexParams,
    spec: &HeadOffloadSpec,
    seed: u64,
    inj: &FaultInjector,
    event_key: u64,
    timeout_ns: f64,
) -> Result<FaultedHeadTiming, FaultError> {
    if spec.context_len == 0 {
        return Ok(FaultedHeadTiming::default());
    }
    let layout = slice_layout(spec, seed);
    let slices = layout.len();
    let timings = longsight_exec::deterministic_map(&layout, |idx, w| {
        try_time_slice_offload_injected(
            params,
            spec,
            w.keys,
            w.survivors,
            w.seed,
            inj,
            longsight_faults::stream(domain::SLICE, event_key, idx as u64, 0),
            timeout_ns,
        )
    });
    let mut agg = FaultedHeadTiming::default();
    for t in timings {
        let t = t?;
        agg.timing = agg.timing.max_with(&t.timing);
        agg.straggled_slices += usize::from(t.straggled);
        agg.false_negatives += t.false_negatives;
        agg.false_positives += t.false_positives;
    }
    if slices > 1 {
        agg.timing.topk_ns +=
            (slices - 1) as f64 * spec.k.min(params.max_k) as f64 * params.dcc_merge_per_entry_ns;
    }
    Ok(agg)
}

/// Times a full head offload whose region may span several Context Slices.
///
/// Slices live in different packages and execute in parallel on their NMAs
/// (§7.1: "multiple or all NMAs can work in parallel on a single attention
/// request"); the head's latency is the slowest slice plus a small DCC merge
/// of the partial top-k lists.
pub fn time_head_offload(
    params: &DrexParams,
    spec: &HeadOffloadSpec,
    seed: u64,
) -> HeadOffloadTiming {
    if spec.context_len == 0 {
        return HeadOffloadTiming::default();
    }
    // Lay out each slice's work first ([`slice_layout`] is a cheap
    // sequential recurrence) — then time the slices on the parallel map,
    // mirroring the NMAs that run them concurrently. Folding `max_with` in
    // slice order afterwards reproduces the serial result bit-for-bit (ties
    // keep the earlier slice either way).
    let layout = slice_layout(spec, seed);
    let slices = layout.len();
    let timings = longsight_exec::deterministic_map(&layout, |_, w| {
        time_slice_offload(params, spec, w.keys, w.survivors, w.seed)
    });
    let mut worst = HeadOffloadTiming::default();
    for t in &timings {
        worst = worst.max_with(t);
    }
    // DCC merge of partial top-k lists: k entries per extra slice, pipelined.
    let mut result = worst;
    if slices > 1 {
        result.topk_ns +=
            (slices - 1) as f64 * spec.k.min(params.max_k) as f64 * params.dcc_merge_per_entry_ns;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(context: usize, survivors: usize) -> HeadOffloadSpec {
        HeadOffloadSpec {
            context_len: context,
            head_dim: 128,
            queries: 4,
            k: 1024,
            survivors,
        }
    }

    #[test]
    fn filter_time_matches_rtl_constant() {
        let p = DrexParams::paper();
        // One epoch, ≤16 queries: d × 1.25 ns.
        let t = time_slice_offload(&p, &spec(1024, 0), 1024, 0, 1);
        assert!((t.filter_ns - 128.0 * 1.25).abs() < 1e-9);
        assert_eq!(t.fetch_score_ns, 0.0);
    }

    #[test]
    fn more_survivors_cost_more_fetch_time() {
        let p = DrexParams::paper();
        let few = time_slice_offload(&p, &spec(65_536, 1_000), 65_536, 1_000, 2);
        let many = time_slice_offload(&p, &spec(65_536, 20_000), 65_536, 20_000, 2);
        assert!(many.fetch_score_ns > few.fetch_score_ns);
        assert!(many.total_ns() > few.total_ns());
    }

    #[test]
    fn dense_fetch_is_bandwidth_bound() {
        let p = DrexParams::paper();
        // All 65,536 keys survive: 16 MiB of keys over 8 × 17 GB/s.
        let keys = 65_536;
        let t = time_slice_offload(&p, &spec(keys, keys), keys, keys, 3);
        let bytes = keys as f64 * 256.0;
        let ideal_ns = bytes / (8.0 * p.dram.channel_bandwidth_gbps());
        assert!(
            t.fetch_score_ns >= ideal_ns,
            "cannot beat peak bandwidth: {} < {ideal_ns}",
            t.fetch_score_ns
        );
        assert!(
            t.fetch_score_ns < ideal_ns * 2.0,
            "sequential fetch should be near streaming bandwidth: {} vs {ideal_ns}",
            t.fetch_score_ns
        );
    }

    #[test]
    fn multi_slice_heads_run_parallel_not_serial() {
        let p = DrexParams::paper();
        // 4 slices worth of context with uniform survivors.
        let big = spec(4 * MAX_CONTEXT_SLICE_KEYS, 40_000);
        let t_big = time_head_offload(&p, &big, 4);
        let small = spec(MAX_CONTEXT_SLICE_KEYS, 10_000);
        let t_small = time_head_offload(&p, &small, 4);
        // Parallel slices: the 4× context costs roughly one slice's time
        // (plus merge), NOT 4×.
        assert!(
            t_big.total_ns() < 2.0 * t_small.total_ns(),
            "multi-slice offload should scale sub-linearly: {} vs {}",
            t_big.total_ns(),
            t_small.total_ns()
        );
    }

    #[test]
    fn sub_linear_scaling_with_context_at_fixed_filter_rate() {
        // Paper §9.1: "DReX offload time scales sub-linearly with context
        // length" (given the 20× filter ratio, survivors scale linearly but
        // the per-epoch overheads amortize).
        let p = DrexParams::paper();
        let t1 = time_head_offload(&p, &spec(32_768, 32_768 / 20), 7);
        let t4 = time_head_offload(&p, &spec(4 * 32_768, 4 * 32_768 / 20), 7);
        assert!(t4.total_ns() < 4.0 * t1.total_ns());
        assert!(t4.total_ns() > t1.total_ns());
    }

    #[test]
    fn query_batches_beyond_pfu_width_serialize() {
        let p = DrexParams::paper();
        let mut s = spec(1024, 0);
        s.queries = 32; // two PFU passes
        let t = time_slice_offload(&p, &s, 1024, 0, 8);
        assert!((t.filter_ns - 2.0 * 128.0 * 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "more survivors than keys")]
    fn inconsistent_survivors_panic() {
        let p = DrexParams::paper();
        let _ = time_slice_offload(&p, &spec(100, 200), 100, 200, 9);
    }

    #[test]
    fn try_variant_reports_typed_errors() {
        let p = DrexParams::paper();
        assert!(matches!(
            try_time_slice_offload(&p, &spec(100, 200), 100, 200, 9),
            Err(FaultError::InvalidSpec(m)) if m == "more survivors than keys"
        ));
        let mut bad_k = spec(1024, 100);
        bad_k.k = p.max_k + 1;
        assert!(matches!(
            try_time_slice_offload(&p, &bad_k, 1024, 100, 9),
            Err(FaultError::InvalidSpec(_))
        ));
        let ok = try_time_slice_offload(&p, &spec(1024, 100), 1024, 100, 9).unwrap();
        assert_eq!(ok, time_slice_offload(&p, &spec(1024, 100), 1024, 100, 9));
    }

    #[test]
    fn disabled_injector_reproduces_plain_timing() {
        let p = DrexParams::paper();
        let off = FaultInjector::disabled();
        let plain = time_slice_offload(&p, &spec(65_536, 3_000), 65_536, 3_000, 4);
        let injected = try_time_slice_offload_injected(
            &p,
            &spec(65_536, 3_000),
            65_536,
            3_000,
            4,
            &off,
            99,
            f64::INFINITY,
        )
        .unwrap();
        assert_eq!(injected.timing, plain);
        assert!(!injected.straggled);
        assert_eq!((injected.false_negatives, injected.false_positives), (0, 0));
        let head_plain = time_head_offload(&p, &spec(4 * MAX_CONTEXT_SLICE_KEYS, 40_000), 4);
        let head_injected = time_head_offload_injected(
            &p,
            &spec(4 * MAX_CONTEXT_SLICE_KEYS, 40_000),
            4,
            &off,
            99,
            f64::INFINITY,
        )
        .unwrap();
        assert_eq!(head_injected.timing, head_plain);
    }

    #[test]
    fn stragglers_scale_the_slice_and_timeouts_kill_it() {
        let p = DrexParams::paper();
        let inj = FaultInjector::new(
            longsight_faults::FaultProfile {
                straggler_rate: 1.0,
                straggler_multiplier: 4.0,
                ..longsight_faults::FaultProfile::disabled()
            },
            7,
        );
        let plain = time_slice_offload(&p, &spec(65_536, 3_000), 65_536, 3_000, 4);
        let faulted = try_time_slice_offload_injected(
            &p,
            &spec(65_536, 3_000),
            65_536,
            3_000,
            4,
            &inj,
            99,
            f64::INFINITY,
        )
        .unwrap();
        assert!(faulted.straggled);
        assert!((faulted.timing.total_ns() - 4.0 * plain.total_ns()).abs() < 1e-6);
        // The 4x-slowed slice misses a timeout set just above the nominal.
        let err = try_time_slice_offload_injected(
            &p,
            &spec(65_536, 3_000),
            65_536,
            3_000,
            4,
            &inj,
            99,
            plain.total_ns() * 1.5,
        )
        .unwrap_err();
        assert!(matches!(err, FaultError::SliceTimeout { .. }));
    }

    #[test]
    fn injected_timing_is_monotone_in_fault_rate() {
        let p = DrexParams::paper();
        let s = spec(65_536, 3_000);
        for stream_key in 0..32u64 {
            let mut prev = 0.0f64;
            for rate in [0.0, 0.05, 0.2, 0.8] {
                let inj = FaultInjector::new(longsight_faults::FaultProfile::scaled(rate), 13);
                let t = try_time_slice_offload_injected(
                    &p,
                    &s,
                    65_536,
                    3_000,
                    4,
                    &inj,
                    stream_key,
                    f64::INFINITY,
                )
                .unwrap();
                assert!(
                    t.timing.total_ns() >= prev - 1e-9,
                    "stream {stream_key}: rate {rate} got cheaper"
                );
                prev = t.timing.total_ns();
            }
        }
    }

    #[test]
    fn bitflips_surface_in_head_aggregation() {
        let p = DrexParams::paper();
        let inj = FaultInjector::new(
            longsight_faults::FaultProfile {
                bitflip_rate: 1.0,
                bitflip_flip_fraction: 0.01,
                ..longsight_faults::FaultProfile::disabled()
            },
            3,
        );
        let agg = time_head_offload_injected(
            &p,
            &spec(2 * MAX_CONTEXT_SLICE_KEYS, 20_000),
            4,
            &inj,
            5,
            f64::INFINITY,
        )
        .unwrap();
        assert!(agg.false_negatives > 0, "every slice corrupts at rate 1");
        assert!(agg.false_positives > agg.false_negatives);
    }

    #[test]
    fn empty_context_is_free() {
        let p = DrexParams::paper();
        let t = time_head_offload(&p, &spec(0, 0), 10);
        assert_eq!(t.total_ns(), 0.0);
    }

    #[test]
    fn survivor_positions_are_strictly_increasing_and_in_bounds() {
        // Includes the stride-1.5 shape from the original duplicate bug and
        // the degenerate all-survive / one-survivor extremes.
        for (keys, survivors) in [
            (3, 2),
            (6, 4),
            (4096, 4096),
            (4096, 2731), // stride ≈ 1.5
            (4096, 1),
            (65_536, 3_000),
            (100, 99),
        ] {
            for seed in 0..20u64 {
                let mut rng = SimRng::seed_from(seed);
                let pos = survivor_positions(&mut rng, keys, survivors);
                assert_eq!(pos.len(), survivors);
                assert!(*pos.last().unwrap() < keys, "{keys}/{survivors}/{seed}");
                for w in pos.windows(2) {
                    assert!(
                        w[1] > w[0],
                        "duplicate or decreasing position {w:?} at {keys}/{survivors}/{seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_survivors_is_the_identity_placement() {
        let mut rng = SimRng::seed_from(1);
        let pos = survivor_positions(&mut rng, 512, 512);
        assert_eq!(pos, (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn slice_layout_matches_reference_recurrence() {
        // Pins the shared helper to the recurrence both head paths relied on
        // before it was extracted: proportional survivor shares, clamped to
        // the slice, final slice absorbing the remainder, per-slice seeds.
        for (context, survivors) in [
            (1, 0),
            (MAX_CONTEXT_SLICE_KEYS, 100),
            (MAX_CONTEXT_SLICE_KEYS + 1, 7),
            (3 * MAX_CONTEXT_SLICE_KEYS + 17, 12_345),
            (4 * MAX_CONTEXT_SLICE_KEYS, 4 * MAX_CONTEXT_SLICE_KEYS),
        ] {
            let s = spec(context, survivors);
            let layout = slice_layout(&s, 0xDEAD);
            let slices = context.div_ceil(MAX_CONTEXT_SLICE_KEYS);
            assert_eq!(layout.len(), slices);
            let mut remaining = context;
            let mut remaining_survivors = survivors;
            for (i, w) in layout.iter().enumerate() {
                let keys = remaining.min(MAX_CONTEXT_SLICE_KEYS);
                let share = if i + 1 == slices {
                    remaining_survivors
                } else {
                    (survivors as f64 * keys as f64 / context as f64).round() as usize
                }
                .min(remaining_survivors)
                .min(keys);
                assert_eq!((w.keys, w.survivors), (keys, share), "slice {i}");
                assert_eq!(w.seed, 0xDEAD ^ (i as u64) << 32, "slice {i}");
                remaining -= keys;
                remaining_survivors -= share;
            }
            assert_eq!(remaining, 0);
            assert_eq!(remaining_survivors, 0);
            assert_eq!(layout.iter().map(|w| w.keys).sum::<usize>(), context);
            assert_eq!(layout.iter().map(|w| w.survivors).sum::<usize>(), survivors);
        }
    }

    #[test]
    fn plain_and_injected_paths_share_one_slice_layout() {
        // With a disabled injector the faulted head path must time the exact
        // same per-slice work as the plain path — layout drift between the
        // two recurrences is what the shared helper rules out.
        let p = DrexParams::paper();
        let off = FaultInjector::disabled();
        for context in [
            MAX_CONTEXT_SLICE_KEYS - 5,
            2 * MAX_CONTEXT_SLICE_KEYS + 123,
            5 * MAX_CONTEXT_SLICE_KEYS,
        ] {
            let s = spec(context, context / 20);
            let plain = time_head_offload(&p, &s, 42);
            let injected = time_head_offload_injected(&p, &s, 42, &off, 7, f64::INFINITY).unwrap();
            assert_eq!(injected.timing, plain, "context {context}");
        }
    }

    #[test]
    fn dcc_merge_cost_scales_with_the_param() {
        let mut p = DrexParams::paper();
        let s = spec(3 * MAX_CONTEXT_SLICE_KEYS, 30_000);
        let base = time_head_offload(&p, &s, 4);
        p.dcc_merge_per_entry_ns = 0.5;
        let doubled = time_head_offload(&p, &s, 4);
        let extra = 2.0 * s.k as f64 * 0.25; // (slices−1) × k × Δcost
        assert!((doubled.topk_ns - base.topk_ns - extra).abs() < 1e-9);
        let off = FaultInjector::disabled();
        let injected = time_head_offload_injected(&p, &s, 4, &off, 7, f64::INFINITY).unwrap();
        assert_eq!(injected.timing, doubled);
    }
}
