//! NMA key-identification addresses (paper §7.4).
//!
//! > "Each Key vector is identified by a 32-bit *ID address* that encodes
//! > three components: the 7 least significant bits represent the bank index
//! > (out of 128 banks per channel); the next 7 bits represent the vector's
//! > index within the 128-bit bitmap; and the 18 most significant bits
//! > encode the epoch number during which the Key was filtered."

/// A packed 32-bit key identifier used by the NMA to map filter bitmaps back
/// to Key vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdAddress(u32);

impl IdAddress {
    /// Bits for the bank index.
    pub const BANK_BITS: u32 = 7;
    /// Bits for the within-bitmap index.
    pub const INDEX_BITS: u32 = 7;
    /// Bits for the epoch number.
    pub const EPOCH_BITS: u32 = 18;

    /// Packs the three components.
    ///
    /// # Panics
    ///
    /// Panics if any component exceeds its field width.
    pub fn new(bank: u32, index: u32, epoch: u32) -> Self {
        assert!(bank < 1 << Self::BANK_BITS, "bank {bank} exceeds 7 bits");
        assert!(
            index < 1 << Self::INDEX_BITS,
            "index {index} exceeds 7 bits"
        );
        assert!(
            epoch < 1 << Self::EPOCH_BITS,
            "epoch {epoch} exceeds 18 bits"
        );
        Self(bank | (index << Self::BANK_BITS) | (epoch << (Self::BANK_BITS + Self::INDEX_BITS)))
    }

    /// The bank index (7 LSBs).
    pub fn bank(self) -> u32 {
        self.0 & ((1 << Self::BANK_BITS) - 1)
    }

    /// The vector's index within its 128-bit bitmap.
    pub fn index(self) -> u32 {
        (self.0 >> Self::BANK_BITS) & ((1 << Self::INDEX_BITS) - 1)
    }

    /// The filtering epoch.
    pub fn epoch(self) -> u32 {
        self.0 >> (Self::BANK_BITS + Self::INDEX_BITS)
    }

    /// The raw 32-bit encoding.
    pub fn to_bits(self) -> u32 {
        self.0
    }

    /// Reconstructs from a raw encoding.
    pub fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// Maps this ID back to a key position within a Context Slice laid out
    /// as `banks_used` banks × 128-key blocks per epoch: the inverse of the
    /// slice layout the NMA controller maintains.
    pub fn key_position(self, banks_used: u32) -> usize {
        (self.epoch() as usize * banks_used as usize + self.bank() as usize) * 128
            + self.index() as usize
    }

    /// Builds the ID for a key at `position` within a slice spanning
    /// `banks_used` banks.
    ///
    /// # Panics
    ///
    /// Panics if the position needs an epoch beyond 18 bits or
    /// `banks_used > 128`.
    pub fn from_key_position(position: usize, banks_used: u32) -> Self {
        assert!(banks_used <= 128, "at most 128 banks per channel");
        let index = (position % 128) as u32;
        let block = position / 128;
        let bank = (block % banks_used as usize) as u32;
        let epoch = (block / banks_used as usize) as u32;
        Self::new(bank, index, epoch)
    }

    /// Largest addressable key position for a full 128-bank slice — enough
    /// for the 18-bit epoch space to cover any context DReX can store.
    pub fn max_position(banks_used: u32) -> usize {
        (1usize << Self::EPOCH_BITS) * banks_used as usize * 128
    }
}

impl std::fmt::Display for IdAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "id(bank={}, idx={}, epoch={})",
            self.bank(),
            self.index(),
            self.epoch()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_into_the_documented_fields() {
        let id = IdAddress::new(0x55, 0x2A, 0x1_FFFF);
        assert_eq!(id.bank(), 0x55);
        assert_eq!(id.index(), 0x2A);
        assert_eq!(id.epoch(), 0x1_FFFF);
        // 7 + 7 + 18 = 32 bits exactly.
        assert_eq!(
            IdAddress::BANK_BITS + IdAddress::INDEX_BITS + IdAddress::EPOCH_BITS,
            32
        );
    }

    #[test]
    fn round_trips_through_bits() {
        let id = IdAddress::new(17, 99, 123_456);
        assert_eq!(IdAddress::from_bits(id.to_bits()), id);
    }

    #[test]
    fn key_position_round_trips() {
        for banks in [8u32, 64, 128] {
            for pos in [0usize, 1, 127, 128, 1_000, 131_071] {
                let id = IdAddress::from_key_position(pos, banks);
                assert_eq!(id.key_position(banks), pos, "banks={banks} pos={pos}");
            }
        }
    }

    #[test]
    fn epoch_space_covers_device_capacity() {
        // A full slice spans 128 banks; 18-bit epochs address 2^32 key
        // positions — far more keys than one channel can store (a 64 MB bank
        // holds ~260K BF16 keys of dim 128, ×128 banks ≈ 2^25 keys).
        assert_eq!(IdAddress::max_position(128), 1usize << 32);
    }

    #[test]
    #[should_panic(expected = "exceeds 7 bits")]
    fn oversized_bank_panics() {
        let _ = IdAddress::new(128, 0, 0);
    }
}
