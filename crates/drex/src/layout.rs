//! DReX data layout (paper §7.3): Key Blocks, Context Slices, Multi-Layer
//! Context Slices, and User Partitions.
//!
//! The layout exploits three forms of parallelism: within a head (DRAM banks
//! and channels), across heads (packages), and across users (multi-tenancy).

use longsight_dram::Geometry;

/// Keys per Key Block per bank (PFUs operate on 128-key blocks, §7.1).
pub const KEYS_PER_BANK_BLOCK: usize = 128;

/// Minimum Key Block group: 128 keys × 8 channels (§7.3.3).
pub const MIN_KEY_GROUP: usize = KEYS_PER_BANK_BLOCK * 8;

/// Maximum keys in one Context Slice: 1,024 × 128 banks (§7.3.3).
pub const MAX_CONTEXT_SLICE_KEYS: usize = MIN_KEY_GROUP * 128;

/// Storage description of one head's keys within a single layer: which
/// package it lives in and how many bank-groups it spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextSlice {
    /// Hosting package.
    pub package: usize,
    /// Number of keys stored.
    pub keys: usize,
    /// Bank-groups used (each = the same bank index across all 8 channels,
    /// holding up to 1,024 keys).
    pub bank_groups: usize,
}

impl ContextSlice {
    /// Lays out `keys` keys (≤ [`MAX_CONTEXT_SLICE_KEYS`]) in `package`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` exceeds the slice capacity.
    pub fn new(package: usize, keys: usize) -> Self {
        assert!(
            keys <= MAX_CONTEXT_SLICE_KEYS,
            "context slice overflow: {keys} > {MAX_CONTEXT_SLICE_KEYS}"
        );
        Self {
            package,
            keys,
            bank_groups: keys.div_ceil(MIN_KEY_GROUP).max(1),
        }
    }

    /// Banks participating in filtering (bank_groups × 8 channels).
    pub fn banks_used(&self) -> usize {
        self.bank_groups * 8
    }

    /// Keys stored per participating bank (the PFU workload).
    pub fn keys_per_bank(&self) -> usize {
        self.keys.div_ceil(self.banks_used())
    }
}

/// Byte-level footprint of one head-layer's objects (paper §7.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjectFootprint {
    /// Key Sign Objects: 1 bit per dimension per key.
    pub key_sign_bytes: usize,
    /// Key Objects: full-precision (BF16) keys.
    pub key_bytes: usize,
    /// Value Objects: BF16 values.
    pub value_bytes: usize,
}

impl ObjectFootprint {
    /// Footprint of `keys` keys of dimension `head_dim` (BF16 storage).
    pub fn for_keys(keys: usize, head_dim: usize) -> Self {
        Self {
            key_sign_bytes: keys * head_dim.div_ceil(8),
            key_bytes: keys * head_dim * 2,
            value_bytes: keys * head_dim * 2,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.key_sign_bytes + self.key_bytes + self.value_bytes
    }
}

/// Placement of one user's full context across the device: one Multi-Layer
/// Context Slice per KV head, each in its own package (§7.3.3).
#[derive(Debug, Clone)]
pub struct UserPartition {
    /// `slices[kv_head][segment]`: the segments a head's context spans when
    /// it exceeds one Context Slice.
    pub slices: Vec<Vec<ContextSlice>>,
    /// Context length this partition stores.
    pub context_len: usize,
    /// Head dimension (for footprint computations).
    pub head_dim: usize,
    /// Number of layers sharing each Multi-Layer Context Slice.
    pub layers: usize,
}

impl UserPartition {
    /// Plans a partition for a user with `kv_heads` heads, `layers` layers,
    /// and `context_len` tokens, assigning packages round-robin starting at
    /// `first_package`.
    ///
    /// # Panics
    ///
    /// Panics if `kv_heads == 0` or the geometry has no packages.
    pub fn plan(
        geometry: &Geometry,
        kv_heads: usize,
        layers: usize,
        head_dim: usize,
        context_len: usize,
        first_package: usize,
    ) -> Self {
        assert!(kv_heads > 0, "need at least one KV head");
        assert!(geometry.packages > 0, "geometry has no packages");
        let mut slices = Vec::with_capacity(kv_heads);
        for h in 0..kv_heads {
            let mut head_slices = Vec::new();
            let mut remaining = context_len;
            let mut seg = 0usize;
            while remaining > 0 || head_slices.is_empty() {
                let take = remaining.min(MAX_CONTEXT_SLICE_KEYS);
                // Head h's segments stride across packages so that very long
                // contexts spread over multiple User Partitions (§7.3.3,
                // "temporal expansion").
                let package = (first_package + h + seg * kv_heads) % geometry.packages;
                head_slices.push(ContextSlice::new(
                    package,
                    take.max(1).min(remaining.max(1)),
                ));
                remaining = remaining.saturating_sub(take.max(1));
                seg += 1;
                if context_len == 0 {
                    break;
                }
            }
            slices.push(head_slices);
        }
        Self {
            slices,
            context_len,
            head_dim,
            layers,
        }
    }

    /// The paper's package-count expression:
    /// `packages = h_kv · L / 131072` (capped below at `h_kv`).
    pub fn packages_required(kv_heads: usize, context_len: usize) -> usize {
        kv_heads * context_len.div_ceil(MAX_CONTEXT_SLICE_KEYS).max(1)
    }

    /// Total bytes this partition occupies (all layers, heads, objects).
    pub fn footprint_bytes(&self) -> usize {
        let per_head_layer = ObjectFootprint::for_keys(self.context_len, self.head_dim).total();
        per_head_layer * self.slices.len() * self.layers
    }

    /// Number of distinct packages touched.
    pub fn packages_touched(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for head in &self.slices {
            for s in head {
                seen.insert(s.package);
            }
        }
        seen.len()
    }
}

/// How many users of a given model/context fit in the device (§9.1: "the
/// large memory capacity of DReX allows LongSight to support more concurrent
/// users").
pub fn max_users(
    geometry: &Geometry,
    kv_heads: usize,
    layers: usize,
    head_dim: usize,
    context_len: usize,
) -> usize {
    let per_user = ObjectFootprint::for_keys(context_len, head_dim).total() * kv_heads * layers;
    if per_user == 0 {
        return usize::MAX;
    }
    geometry.total_bytes() / per_user
}

/// Bytes one KV-cache page of `page_tokens` tokens occupies on the device,
/// across all `kv_heads` × `layers` head-layers (sign + key + value
/// objects). The paged scheduler allocates tail pages at this granularity.
pub fn kv_page_bytes(kv_heads: usize, layers: usize, head_dim: usize, page_tokens: usize) -> usize {
    ObjectFootprint::for_keys(page_tokens, head_dim).total() * kv_heads * layers
}

/// Total KV pages of `page_tokens` tokens the device geometry can hold —
/// the DReX tier capacity of the paged KV-cache manager.
pub fn device_kv_pages(
    geometry: &Geometry,
    kv_heads: usize,
    layers: usize,
    head_dim: usize,
    page_tokens: usize,
) -> usize {
    let per_page = kv_page_bytes(kv_heads, layers, head_dim, page_tokens);
    if per_page == 0 {
        return usize::MAX;
    }
    geometry.total_bytes() / per_page
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_slice_capacity_constants() {
        assert_eq!(MIN_KEY_GROUP, 1024);
        assert_eq!(MAX_CONTEXT_SLICE_KEYS, 131_072);
    }

    #[test]
    fn small_slice_uses_one_bank_group() {
        let s = ContextSlice::new(0, 500);
        assert_eq!(s.bank_groups, 1);
        assert_eq!(s.banks_used(), 8);
        assert_eq!(s.keys_per_bank(), 63);
    }

    #[test]
    fn full_slice_uses_all_banks() {
        let s = ContextSlice::new(3, MAX_CONTEXT_SLICE_KEYS);
        assert_eq!(s.bank_groups, 128);
        assert_eq!(s.banks_used(), 1024);
        assert_eq!(s.keys_per_bank(), 128);
    }

    #[test]
    #[should_panic(expected = "context slice overflow")]
    fn oversized_slice_panics() {
        let _ = ContextSlice::new(0, MAX_CONTEXT_SLICE_KEYS + 1);
    }

    #[test]
    fn partition_spreads_heads_across_packages() {
        let g = Geometry::drex();
        let p = UserPartition::plan(&g, 8, 32, 128, 32_768, 0);
        assert_eq!(p.slices.len(), 8);
        // 32K keys fit one slice per head; heads land on distinct packages.
        assert!(p.slices.iter().all(|s| s.len() == 1));
        assert_eq!(p.packages_touched(), 8);
    }

    #[test]
    fn long_context_spans_multiple_slices() {
        let g = Geometry::drex();
        let one_m = 1 << 20;
        let p = UserPartition::plan(&g, 8, 32, 128, one_m, 0);
        let segs = p.slices[0].len();
        assert_eq!(segs, one_m.div_ceil(MAX_CONTEXT_SLICE_KEYS));
        assert_eq!(segs, 8);
        // Paper formula: 8 heads × 8 slices = 64 package-slots needed.
        assert_eq!(UserPartition::packages_required(8, one_m), 64);
    }

    #[test]
    fn llama8b_1m_context_fits_in_drex() {
        // Headline claim: 1M-token context for Llama-3-8B in one 512 GB DReX.
        let g = Geometry::drex();
        let users = max_users(&g, 8, 32, 128, 1 << 20);
        assert!(users >= 1, "1M-token Llama-3-8B context must fit");
        // KV cache alone is ~128 GiB; with sign objects it stays < 512 GB.
        let p = UserPartition::plan(&g, 8, 32, 128, 1 << 20, 0);
        assert!(p.footprint_bytes() > 128 * (1usize << 30));
        assert!(p.footprint_bytes() < g.total_bytes());
    }

    #[test]
    fn sign_objects_add_one_sixteenth_overhead_for_bf16() {
        // 1 bit/dim vs 16 bits/dim for keys: sign objects are 1/16 of the
        // key bytes — the "additional overhead for storing sign bits" noted
        // under Fig 7.
        let f = ObjectFootprint::for_keys(1024, 128);
        assert_eq!(f.key_sign_bytes * 16, f.key_bytes);
    }

    #[test]
    fn max_users_scales_inversely_with_context() {
        let g = Geometry::drex();
        let at_32k = max_users(&g, 8, 32, 128, 32_768);
        let at_64k = max_users(&g, 8, 32, 128, 65_536);
        assert!(at_32k >= 2 * at_64k);
        assert!(at_32k > 0);
    }

    #[test]
    fn kv_page_bytes_matches_per_user_footprint() {
        // A context split into pages occupies the same bytes as the whole
        // context (both round at page granularity when aligned).
        let per_page = kv_page_bytes(8, 32, 128, 1024);
        let whole = ObjectFootprint::for_keys(8 * 1024, 128).total() * 8 * 32;
        assert_eq!(per_page * 8, whole);
    }

    #[test]
    fn device_pages_times_page_bytes_fills_the_device() {
        let g = Geometry::drex();
        let pages = device_kv_pages(&g, 8, 32, 128, 1024);
        let per_page = kv_page_bytes(8, 32, 128, 1024);
        assert!(pages > 0);
        assert!(pages * per_page <= g.total_bytes());
        assert!((pages + 1) * per_page > g.total_bytes());
    }
}
