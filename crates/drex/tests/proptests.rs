//! Property-based tests for the DReX device model, on the in-repo
//! [`check`](longsight_tensor::check) runner.

use longsight_core::{RotationTable, ThresholdTable};
use longsight_cxl::CxlLink;
use longsight_dram::Geometry;
use longsight_drex::layout::{ContextSlice, UserPartition, MAX_CONTEXT_SLICE_KEYS};
use longsight_drex::{
    time_head_offload, DccSim, DrexDevice, DrexParams, HeadOffloadSpec, HeadWork, RequestDescriptor,
};
use longsight_tensor::check::run_cases;
use longsight_tensor::{prop_ensure, prop_ensure_eq, SimRng};

#[test]
fn context_slices_respect_capacity_and_banks() {
    run_cases("context_slices_respect_capacity_and_banks", 32, |g| {
        let keys = g.usize_in(1, MAX_CONTEXT_SLICE_KEYS + 1);
        let s = ContextSlice::new(0, keys);
        prop_ensure!(s.banks_used() <= 1024);
        prop_ensure!(s.keys_per_bank() <= 128);
        prop_ensure!(s.keys_per_bank() * s.banks_used() >= keys);
        Ok(())
    });
}

#[test]
fn partitions_cover_the_context() {
    run_cases("partitions_cover_the_context", 32, |g| {
        let kv_heads = g.usize_in(1, 9);
        let ctx = g.usize_in(0, 600_000);
        let p = UserPartition::plan(&Geometry::drex(), kv_heads, 4, 64, ctx, 0);
        prop_ensure_eq!(p.slices.len(), kv_heads);
        for head in &p.slices {
            let total: usize = head.iter().map(|s| s.keys).sum();
            prop_ensure_eq!(
                total,
                ctx,
                "slices must cover the context exactly: {total} != {ctx}"
            );
            for s in head {
                prop_ensure!(s.keys <= MAX_CONTEXT_SLICE_KEYS);
            }
        }
        Ok(())
    });
}

#[test]
fn offload_time_monotone_in_survivors() {
    run_cases("offload_time_monotone_in_survivors", 32, |g| {
        let keys = g.usize_in(1024, 100_000);
        let frac_a = g.f64_in(0.01, 0.4);
        let extra = g.f64_in(0.05, 0.5);
        let spec = |sv: usize| HeadOffloadSpec {
            context_len: keys,
            head_dim: 128,
            queries: 4,
            k: 1024,
            survivors: sv,
        };
        let sa = ((keys as f64) * frac_a) as usize;
        let sb = (((keys as f64) * (frac_a + extra)) as usize).min(keys);
        let p = DrexParams::paper();
        let ta = time_head_offload(&p, &spec(sa), 1);
        let tb = time_head_offload(&p, &spec(sb), 1);
        prop_ensure!(
            tb.total_ns() >= ta.total_ns() * 0.95,
            "more survivors should not get meaningfully faster: {} vs {}",
            ta.total_ns(),
            tb.total_ns()
        );
        Ok(())
    });
}

#[test]
fn dcc_scheduling_is_work_conserving() {
    run_cases("dcc_scheduling_is_work_conserving", 32, |g| {
        let durations = g.vec_f64(1, 40, 10.0, 10_000.0);
        let mut dcc = DccSim::new(DrexParams::paper(), CxlLink::pcie5_x16(), 8);
        let slices: Vec<(usize, f64)> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| (i % 8, d))
            .collect();
        let (done, _) = dcc.schedule_slices(0.0, &slices);
        let total: f64 = durations.iter().sum();
        let max: f64 = durations.iter().cloned().fold(0.0, f64::max);
        // Makespan bounds: at least max(longest job, total/8), at most total.
        prop_ensure!(done >= max - 1e-9);
        prop_ensure!(done >= total / 8.0 - 1e-9);
        prop_ensure!(done <= total + 1e-9);
        Ok(())
    });
}

#[test]
fn device_retrieves_at_most_k() {
    run_cases("device_retrieves_at_most_k", 32, |g| {
        let n = g.usize_in(1, 200);
        let k = g.usize_in(0, 64);
        let threshold = g.u32_in(0, 16);
        let mut dev = DrexDevice::new(
            DrexParams::paper(),
            CxlLink::pcie5_x16(),
            Geometry::drex(),
            ThresholdTable::uniform(1, 1, threshold),
            RotationTable::identity(1, 1, 16),
            16,
        );
        let user = dev.register_user();
        let mut rng = SimRng::seed_from(n as u64);
        let keys: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(16)).collect();
        let vals: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(16)).collect();
        dev.write_kv_block(user, 0, 0, &keys, &vals).unwrap();
        let req = RequestDescriptor {
            user,
            layer: 0,
            queries: vec![vec![rng.normal_vec(16)]],
        };
        let out = dev.offload(&req, k, 0.0).unwrap();
        let hits = &out.response.hits[0][0];
        prop_ensure!(hits.len() <= k.min(n));
        // Scores sorted descending.
        for w in hits.windows(2) {
            prop_ensure!(w[0].score >= w[1].score);
        }
        // Raising the threshold can only shrink the result set.
        if threshold > 0 {
            let mut dev0 = DrexDevice::new(
                DrexParams::paper(),
                CxlLink::pcie5_x16(),
                Geometry::drex(),
                ThresholdTable::uniform(1, 1, 0),
                RotationTable::identity(1, 1, 16),
                16,
            );
            let u0 = dev0.register_user();
            dev0.write_kv_block(u0, 0, 0, &keys, &vals).unwrap();
            let req0 = RequestDescriptor {
                user: u0,
                ..req.clone()
            };
            let out0 = dev0.offload(&req0, k, 0.0).unwrap();
            prop_ensure!(hits.len() <= out0.response.hits[0][0].len());
        }
        Ok(())
    });
}

#[test]
fn dcc_submit_orders_phases() {
    run_cases("dcc_submit_orders_phases", 32, |g| {
        let ctx = g.usize_in(1024, 300_000);
        let survivors_frac = g.f64_in(0.01, 0.3);
        let mut dcc = DccSim::new(DrexParams::paper(), CxlLink::pcie5_x16(), 8);
        let survivors = ((ctx as f64) * survivors_frac) as usize;
        let slices = ctx.div_ceil(MAX_CONTEXT_SLICE_KEYS);
        let work = HeadWork {
            spec: HeadOffloadSpec {
                context_len: ctx,
                head_dim: 64,
                queries: 4,
                k: 512,
                survivors,
            },
            slice_packages: (0..slices).collect(),
        };
        let t = dcc.submit(5_000.0, &[work], 512, 4096);
        prop_ensure!(t.submitted_ns >= 5_000.0);
        prop_ensure!(t.device_done_ns >= t.submitted_ns);
        prop_ensure!(t.observed_ns > t.device_done_ns);
        prop_ensure!(t.value_read_ns > 0.0);
        Ok(())
    });
}
