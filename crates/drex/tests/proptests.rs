//! Property-based tests for the DReX device model.

use longsight_core::{RotationTable, ThresholdTable};
use longsight_cxl::CxlLink;
use longsight_dram::Geometry;
use longsight_drex::layout::{ContextSlice, UserPartition, MAX_CONTEXT_SLICE_KEYS};
use longsight_drex::{
    time_head_offload, DccSim, DrexDevice, DrexParams, HeadOffloadSpec, HeadWork,
    RequestDescriptor,
};
use longsight_tensor::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn context_slices_respect_capacity_and_banks(keys in 1usize..=MAX_CONTEXT_SLICE_KEYS) {
        let s = ContextSlice::new(0, keys);
        prop_assert!(s.banks_used() <= 1024);
        prop_assert!(s.keys_per_bank() <= 128);
        prop_assert!(s.keys_per_bank() * s.banks_used() >= keys);
    }

    #[test]
    fn partitions_cover_the_context(kv_heads in 1usize..=8, ctx in 0usize..600_000) {
        let p = UserPartition::plan(&Geometry::drex(), kv_heads, 4, 64, ctx, 0);
        prop_assert_eq!(p.slices.len(), kv_heads);
        for head in &p.slices {
            let total: usize = head.iter().map(|s| s.keys).sum();
            prop_assert_eq!(total, ctx, "slices must cover the context exactly");
            for s in head {
                prop_assert!(s.keys <= MAX_CONTEXT_SLICE_KEYS);
            }
        }
    }

    #[test]
    fn offload_time_monotone_in_survivors(keys in 1024usize..100_000, frac_a in 0.01f64..0.4, extra in 0.05f64..0.5) {
        let spec = |sv: usize| HeadOffloadSpec {
            context_len: keys,
            head_dim: 128,
            queries: 4,
            k: 1024,
            survivors: sv,
        };
        let sa = ((keys as f64) * frac_a) as usize;
        let sb = (((keys as f64) * (frac_a + extra)) as usize).min(keys);
        let p = DrexParams::paper();
        let ta = time_head_offload(&p, &spec(sa), 1);
        let tb = time_head_offload(&p, &spec(sb), 1);
        prop_assert!(
            tb.total_ns() >= ta.total_ns() * 0.95,
            "more survivors should not get meaningfully faster: {} vs {}",
            ta.total_ns(),
            tb.total_ns()
        );
    }

    #[test]
    fn dcc_scheduling_is_work_conserving(durations in prop::collection::vec(10.0f64..10_000.0, 1..40)) {
        let mut dcc = DccSim::new(DrexParams::paper(), CxlLink::pcie5_x16(), 8);
        let slices: Vec<(usize, f64)> = durations.iter().enumerate().map(|(i, &d)| (i % 8, d)).collect();
        let (done, _) = dcc.schedule_slices(0.0, &slices);
        let total: f64 = durations.iter().sum();
        let max: f64 = durations.iter().cloned().fold(0.0, f64::max);
        // Makespan bounds: at least max(longest job, total/8), at most total.
        prop_assert!(done >= max - 1e-9);
        prop_assert!(done >= total / 8.0 - 1e-9);
        prop_assert!(done <= total + 1e-9);
    }

    #[test]
    fn device_retrieves_at_most_k(n in 1usize..200, k in 0usize..64, threshold in 0u32..16) {
        let mut dev = DrexDevice::new(
            DrexParams::paper(),
            CxlLink::pcie5_x16(),
            Geometry::drex(),
            ThresholdTable::uniform(1, 1, threshold),
            RotationTable::identity(1, 1, 16),
            16,
        );
        let user = dev.register_user();
        let mut rng = SimRng::seed_from(n as u64);
        let keys: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(16)).collect();
        let vals: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(16)).collect();
        dev.write_kv_block(user, 0, 0, &keys, &vals).unwrap();
        let req = RequestDescriptor {
            user,
            layer: 0,
            queries: vec![vec![rng.normal_vec(16)]],
        };
        let out = dev.offload(&req, k, 0.0).unwrap();
        let hits = &out.response.hits[0][0];
        prop_assert!(hits.len() <= k.min(n));
        // Scores sorted descending.
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        // Raising the threshold can only shrink the result set.
        if threshold > 0 {
            let mut dev0 = DrexDevice::new(
                DrexParams::paper(),
                CxlLink::pcie5_x16(),
                Geometry::drex(),
                ThresholdTable::uniform(1, 1, 0),
                RotationTable::identity(1, 1, 16),
                16,
            );
            let u0 = dev0.register_user();
            dev0.write_kv_block(u0, 0, 0, &keys, &vals).unwrap();
            let req0 = RequestDescriptor { user: u0, ..req.clone() };
            let out0 = dev0.offload(&req0, k, 0.0).unwrap();
            prop_assert!(hits.len() <= out0.response.hits[0][0].len());
        }
    }

    #[test]
    fn dcc_submit_orders_phases(ctx in 1024usize..300_000, survivors_frac in 0.01f64..0.3) {
        let mut dcc = DccSim::new(DrexParams::paper(), CxlLink::pcie5_x16(), 8);
        let survivors = ((ctx as f64) * survivors_frac) as usize;
        let slices = ctx.div_ceil(MAX_CONTEXT_SLICE_KEYS);
        let work = HeadWork {
            spec: HeadOffloadSpec {
                context_len: ctx,
                head_dim: 64,
                queries: 4,
                k: 512,
                survivors,
            },
            slice_packages: (0..slices).collect(),
        };
        let t = dcc.submit(5_000.0, &[work], 512, 4096);
        prop_assert!(t.submitted_ns >= 5_000.0);
        prop_assert!(t.device_done_ns >= t.submitted_ns);
        prop_assert!(t.observed_ns > t.device_done_ns);
        prop_assert!(t.value_read_ns > 0.0);
    }
}
