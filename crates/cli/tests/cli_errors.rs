//! CLI error-path contract for the telemetry commands: bad flags and bad
//! input files must fail with a nonzero exit code and a diagnostic on
//! stderr, never a panic or a silent success.

use std::path::PathBuf;
use std::process::{Command, Output};

fn longsight(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_longsight"))
        .args(args)
        .output()
        .expect("spawning the longsight binary")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Runs a fast loadtest that writes a real timeseries export, returns its
/// path inside `dir`.
fn write_export(dir: &std::path::Path, name: &str, seed: &str) -> PathBuf {
    let path = dir.join(name);
    let out = longsight(&[
        "loadtest",
        "--model",
        "1b",
        "--rate",
        "4",
        "--duration",
        "2",
        "--ctx-min",
        "16384",
        "--ctx-max",
        "16384",
        "--sched",
        "slo-aware",
        "--seed",
        seed,
        "--timeseries-out",
        path.to_str().expect("utf-8 tmp path"),
    ]);
    assert!(out.status.success(), "loadtest failed: {}", stderr_of(&out));
    path
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("longsight-cli-errors-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating tmpdir");
    dir
}

#[test]
fn bad_ts_window_fails_with_exit_1_and_a_diagnostic() {
    let dir = tmpdir("window");
    let ts = dir.join("ts.tsv");
    for bad in ["0", "-5", "nan", "inf"] {
        let out = longsight(&[
            "loadtest",
            "--model",
            "1b",
            "--duration",
            "1",
            "--timeseries-out",
            ts.to_str().expect("utf-8 tmp path"),
            "--ts-window-ms",
            bad,
        ]);
        assert_eq!(out.status.code(), Some(1), "--ts-window-ms {bad}");
        assert!(
            stderr_of(&out).contains("--ts-window-ms"),
            "stderr must name the flag for value {bad}: {}",
            stderr_of(&out)
        );
    }
    // The window flag without the export flag is a contradiction, not a
    // silent no-op.
    let out = longsight(&[
        "loadtest",
        "--model",
        "1b",
        "--duration",
        "1",
        "--ts-window-ms",
        "250",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("--timeseries-out"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_flag_contradictions_fail_with_exit_1_and_a_diagnostic() {
    // A session with no turns can never open.
    let out = longsight(&[
        "loadtest",
        "--model",
        "1b",
        "--sessions",
        "4",
        "--turns",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1), "--turns 0 must exit 1");
    assert!(
        stderr_of(&out).contains("--turns"),
        "stderr must name the flag: {}",
        stderr_of(&out)
    );

    // Negative (or non-finite) think times are a typo, not a workload.
    for bad in ["-5", "nan"] {
        let out = longsight(&[
            "loadtest",
            "--model",
            "1b",
            "--sessions",
            "4",
            "--think-time-ms",
            bad,
        ]);
        assert_eq!(out.status.code(), Some(1), "--think-time-ms {bad}");
        assert!(
            stderr_of(&out).contains("--think-time-ms"),
            "stderr must name the flag for value {bad}: {}",
            stderr_of(&out)
        );
    }

    // Affinity routing on one replica is a contradiction: the single
    // replica owns every prefix, so there is nothing to be affine to.
    let out = longsight(&[
        "loadtest",
        "--model",
        "1b",
        "--router",
        "affinity",
        "--replicas",
        "1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "affinity at 1 replica must exit 1"
    );
    assert!(
        stderr_of(&out).contains("--replicas >= 2"),
        "stderr must state the replica floor: {}",
        stderr_of(&out)
    );

    // Session follow-up flags without --sessions are rejected, not
    // silently ignored.
    let out = longsight(&["loadtest", "--model", "1b", "--turns", "3"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("--sessions"),
        "stderr must point at --sessions: {}",
        stderr_of(&out)
    );
}

#[test]
fn dashboard_and_perf_diff_reject_missing_or_malformed_files() {
    let dir = tmpdir("files");
    let missing = dir.join("does-not-exist.tsv");
    let missing_str = missing.to_str().expect("utf-8 tmp path");

    for args in [
        vec!["dashboard", "--file", missing_str],
        vec!["perf-diff", "--self-check", missing_str],
        vec![
            "perf-diff",
            "--baseline",
            missing_str,
            "--candidate",
            missing_str,
        ],
        vec!["perf-diff", "--gate", missing_str],
    ] {
        let out = longsight(&args);
        assert_eq!(out.status.code(), Some(1), "{args:?} must exit 1");
        let err = stderr_of(&out);
        assert!(
            err.contains("does-not-exist.tsv"),
            "{args:?} stderr must name the missing file: {err}"
        );
    }

    let garbage = dir.join("garbage.tsv");
    std::fs::write(&garbage, "not a timeseries export\n").expect("writing garbage file");
    let out = longsight(&[
        "perf-diff",
        "--self-check",
        garbage.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("garbage.tsv"));

    let out = longsight(&["dashboard", "--file", garbage.to_str().expect("utf-8")]);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_diff_rejects_mismatched_series_sets() {
    let dir = tmpdir("mismatch");
    // Different seeds, same shape: this pair diffs cleanly.
    let a = write_export(&dir, "a.tsv", "7");
    let b = write_export(&dir, "b.tsv", "8");
    let out = longsight(&[
        "perf-diff",
        "--baseline",
        a.to_str().expect("utf-8"),
        "--candidate",
        b.to_str().expect("utf-8"),
        "--threshold-pct",
        "100000",
    ]);
    assert!(
        out.status.success(),
        "same-shape diff with a huge threshold must pass: {}",
        stderr_of(&out)
    );

    // Drop the last column from the candidate: the series sets now differ
    // and the diff must fail loudly instead of comparing what matches.
    let text = std::fs::read_to_string(&b).expect("reading export");
    let truncated: String = text
        .lines()
        .map(|l| match l.rsplit_once('\t') {
            Some((keep, _)) => format!("{keep}\n"),
            None => format!("{l}\n"), // comment lines carry no tabs
        })
        .collect();
    let c = dir.join("c.tsv");
    std::fs::write(&c, truncated).expect("writing truncated export");
    let out = longsight(&[
        "perf-diff",
        "--baseline",
        a.to_str().expect("utf-8"),
        "--candidate",
        c.to_str().expect("utf-8"),
    ]);
    assert_eq!(out.status.code(), Some(1), "mismatched series must exit 1");
    let err = stderr_of(&out);
    assert!(
        err.contains("missing from candidate"),
        "stderr must name the missing series: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_diff_gate_detects_a_pinned_regression() {
    let dir = tmpdir("gate");
    // A trajectory that pins an impossible tail: the real golden tables
    // exceed 0.001 ms, so the gate must report a regression and exit 1.
    let traj = dir.join("trajectory.tsv");
    std::fs::write(
        &traj,
        "# synthetic\nsched_comparison/8s/slo-aware/interactive_p99_request_ms\t0.001\n",
    )
    .expect("writing trajectory");
    let out = Command::new(env!("CARGO_BIN_EXE_longsight"))
        .args(["perf-diff", "--gate", traj.to_str().expect("utf-8")])
        .current_dir(env!("CARGO_MANIFEST_DIR").to_string() + "/../..")
        .output()
        .expect("spawning the longsight binary");
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let err = stderr_of(&out);
    assert!(
        err.contains("regressed"),
        "stderr must report the regression: {err}"
    );

    // An unknown key is a loud error, not a skipped row.
    std::fs::write(&traj, "mystery_table/1r/foo\t100\n").expect("writing trajectory");
    let out = longsight(&["perf-diff", "--gate", traj.to_str().expect("utf-8")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("unknown trajectory table"));
    std::fs::remove_dir_all(&dir).ok();
}
