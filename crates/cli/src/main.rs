//! `longsight` — command-line interface to the LongSight reproduction.
//!
//! ```text
//! longsight quality   [--ctx 1024] [--window 256] [--k 128] [--threshold 18] [--itq true]
//! longsight serve     [--model 1b|8b] [--ctx 131072] [--users 8] [--system longsight|gpu|gpu2|attacc|window]
//!                     [--fault-profile none|mild|severe|RATE] [--fault-seed N] [--deadline-ms MS]
//!                     [--page-tokens N] [--watermark F] [--trace-out FILE] [--metrics-out FILE]
//! longsight loadtest  [--model 1b|8b] [--rate 2.0] [--duration 10] [--ctx-min 32768] [--ctx-max 131072]
//!                     [--sched fifo|slo-aware] [--mix I,B,E] [--page-tokens N] [--prefill-chunk N]
//!                     [--prefill-slots N] [--watermark F] [--replicas N] [--router jsq|rr]
//!                     [--crash-profile none|mild|severe|RATE] [--crash-seed N]
//!                     [--breaker on|off] [--shed-cap N]
//!                     [--fault-profile ...] [--fault-seed N] [--deadline-ms MS]
//!                     [--trace-out FILE] [--metrics-out FILE]
//! longsight profile   [--model 1b|8b] [--rate 2.0] [--duration 10] [--ctx-min 131072] [--ctx-max 131072]
//!                     [--fault-profile ...] [--fault-seed N] [--trace-out FILE] [--metrics-out FILE]
//! longsight offload   [--model 1b|8b] [--ctx 131072] [--users 1]
//!                     [--fault-profile ...] [--fault-seed N] [--deadline-ms MS]
//!                     [--trace-out FILE] [--metrics-out FILE]
//! longsight trace-validate --file trace.json
//! longsight dashboard --file timeseries.tsv [--width 60]
//! longsight perf-diff [--self-check FILE | --gate results/trajectory.tsv | --baseline A --candidate B]
//! longsight tune      [--ctx 768] [--window 192] [--k 96] [--budget 0.05]
//! longsight layout    [--model 1b|8b] [--ctx 1048576]
//! ```
//!
//! Every command also accepts a global `--threads N` flag selecting the
//! worker count for the deterministic parallel maps (`longsight-exec`);
//! results are bit-identical at any setting.

mod args;
mod commands;
mod perf;

use args::Args;

/// Strips a global `--threads N` pair from the argument list and applies it
/// to the worker pool ([`longsight_exec::set_thread_count`]); `--threads 1`
/// forces the exact serial path. Output is identical at any thread count.
fn take_threads(argv: Vec<String>) -> Result<Vec<String>, String> {
    let mut out = Vec::with_capacity(argv.len());
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        if tok == "--threads" {
            let Some(v) = it.next() else {
                return Err("flag --threads needs a value".into());
            };
            let n: usize = v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --threads"))?;
            if n == 0 {
                return Err("--threads must be >= 1".into());
            }
            longsight_exec::set_thread_count(n);
        } else {
            out.push(tok);
        }
    }
    Ok(out)
}

fn main() {
    let argv = match take_threads(std::env::args().skip(1).collect()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let parsed = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match cmd.as_str() {
        "quality" => commands::quality(&parsed),
        "serve" => commands::serve(&parsed),
        "loadtest" => commands::loadtest(&parsed),
        "profile" => commands::profile(&parsed),
        "offload" => commands::offload(&parsed),
        "trace-validate" => commands::trace_validate(&parsed),
        "dashboard" => perf::dashboard(&parsed),
        "perf-diff" => perf::perf_diff(&parsed),
        "tune" => commands::tune(&parsed),
        "layout" => commands::layout(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "\
longsight — LongSight (MICRO 2025) reproduction CLI

global flags:
  --threads N  worker threads for the deterministic parallel maps
               (default: LONGSIGHT_THREADS env or hardware; results are
               bit-identical at any thread count; 1 = serial)

commands:
  quality    dense vs LongSight hybrid perplexity + filter ratio on the
             induction model       [--ctx N] [--window W] [--k K]
                                   [--threshold T] [--itq true|false]
  serve      one serving evaluation row
                                   [--model 1b|8b] [--ctx N] [--users U]
                                   [--system longsight|gpu|gpu2|attacc|window]
                                   [--fault-profile none|mild|severe|RATE]
                                   [--fault-seed N] [--deadline-ms MS]
                                   [--page-tokens N] [--watermark F]
                                   [--trace-out FILE] [--metrics-out FILE]
                                   [--timeseries-out FILE] [--ts-window-ms MS]
  loadtest   closed-loop Poisson serving simulation with percentiles
                                   [--model 1b|8b] [--rate R] [--duration S]
                                   [--ctx-min N] [--ctx-max N]
                                   [--sched fifo|slo-aware] [--mix I,B,E]
                                   [--page-tokens N] [--prefill-chunk N]
                                   [--prefill-slots N] [--watermark F]
                                   [--replicas N] [--router jsq|rr]
                                   [--crash-profile none|mild|severe|RATE]
                                   [--crash-seed N] [--breaker on|off]
                                   [--shed-cap N]
                                   [--fault-profile ...] [--fault-seed N]
                                   [--deadline-ms MS]
                                   [--trace-out FILE] [--metrics-out FILE]
                                   [--timeseries-out FILE] [--ts-window-ms MS]
  profile    per-token latency attribution table over a serving run
                                   [--model 1b|8b] [--rate R] [--duration S]
                                   [--ctx-min N] [--ctx-max N]
                                   [--fault-profile ...] [--fault-seed N]
                                   [--trace-out FILE] [--metrics-out FILE]
  offload    DReX offload latency profile (Fig 8 style)
                                   [--model 1b|8b] [--ctx N] [--users U]
                                   [--fault-profile ...] [--fault-seed N]
                                   [--deadline-ms MS]
                                   [--trace-out FILE] [--metrics-out FILE]
  trace-validate  check a --trace-out file is valid non-empty Chrome
                  trace JSON       --file FILE
  dashboard  per-replica text-sparkline panels from a --timeseries-out
             export                --file FILE [--width N]
  perf-diff  compare observability exports / run the CI trajectory gate
                                   --self-check FILE
                                 | --gate results/trajectory.tsv
                                   [--threshold-pct P]
                                 | --baseline A --candidate B
                                   [--threshold-pct P]
  tune       run the paper's SCF threshold tuner (section 8.1.3)
                                   [--ctx N] [--window W] [--k K] [--budget F]
  layout     User Partition plan + capacity for a context length
                                   [--model 1b|8b] [--ctx N]";
