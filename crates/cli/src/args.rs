//! Minimal flag parsing (`--key value` pairs) — no external dependencies.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses everything after the subcommand.
    ///
    /// # Errors
    ///
    /// Returns a message on a dangling `--flag` without a value or a
    /// non-flag token.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!(
                    "unexpected argument '{tok}' (flags are --key value)"
                ));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{key} needs a value"));
            };
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Rejects unknown flags (catches typos).
    ///
    /// # Errors
    ///
    /// Lists the first unknown flag and the allowed set.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag --{k}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = Args::parse(&s(&["--ctx", "1024", "--users", "4"])).unwrap();
        assert_eq!(a.get_or("ctx", 0usize).unwrap(), 1024);
        assert_eq!(a.get_or("users", 0usize).unwrap(), 4);
        assert_eq!(a.get_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&s(&["ctx"])).is_err());
        assert!(Args::parse(&s(&["--ctx"])).is_err());
        let a = Args::parse(&s(&["--ctx", "abc"])).unwrap();
        assert!(a.get_or("ctx", 0usize).is_err());
    }

    #[test]
    fn flags_are_validated() {
        let a = Args::parse(&s(&["--ctx", "1"])).unwrap();
        assert!(a.ensure_known(&["ctx"]).is_ok());
        assert!(a.ensure_known(&["users"]).is_err());
    }
}
