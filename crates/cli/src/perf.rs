//! `longsight dashboard` and `longsight perf-diff` — offline consumers of
//! the exported observability artifacts.
//!
//! Both commands operate purely on files written by earlier runs
//! (`--timeseries-out`, `--metrics-out`, the checked-in golden tables), so
//! they are deterministic by construction: same inputs, same bytes out.
//! `perf-diff` is also the CI trajectory gate — it re-reads the golden
//! result tables and fails when a pinned interactive tail regresses.

use crate::args::Args;
use longsight_obs::json::{self, Value};
use longsight_obs::timeseries::Export;

/// Eight-level block characters for the text sparklines.
const SPARK: [char; 8] = [
    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}',
];

/// Rendered for a window with no sample (a gauge before its first write,
/// an empty quantile window).
const SPARK_GAP: char = '\u{00b7}';

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn load_export(path: &str) -> Result<Export, String> {
    Export::parse(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Downsamples one series to `width` buckets and renders it as a
/// sparkline. Each bucket shows the max of its present samples scaled
/// against the series' own min..max; buckets with no samples render as
/// [`SPARK_GAP`].
fn sparkline(values: &[Option<f64>], width: usize) -> String {
    let n = values.len();
    let width = width.min(n.max(1));
    let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
    let (lo, hi) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let mut out = String::with_capacity(width * 3);
    for b in 0..width {
        let start = b * n / width;
        let end = ((b + 1) * n / width).max(start + 1).min(n);
        let bucket = values[start..end]
            .iter()
            .filter_map(|v| *v)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            });
        out.push(match bucket {
            None => SPARK_GAP,
            Some(v) => {
                let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                let idx = (frac * 7.0).round().clamp(0.0, 7.0) as usize;
                SPARK[idx]
            }
        });
    }
    out
}

/// Splits exported column names into per-replica panels (`r<i>.` prefix)
/// plus a shared panel for everything else, preserving export order
/// inside each panel.
fn panels(export: &Export) -> Vec<(String, Vec<usize>)> {
    let mut out: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, (name, _)) in export.columns.iter().enumerate() {
        let panel = match replica_of(name) {
            Some(r) => format!("replica {r}"),
            None => "fleet".to_string(),
        };
        match out.iter_mut().find(|(p, _)| *p == panel) {
            Some((_, cols)) => cols.push(i),
            None => out.push((panel, vec![i])),
        }
    }
    out
}

/// `r<digits>.` prefix → replica index.
fn replica_of(name: &str) -> Option<usize> {
    let rest = name.strip_prefix('r')?;
    let dot = rest.find('.')?;
    rest[..dot].parse().ok()
}

/// `longsight dashboard` — text-sparkline panels from a timeseries export.
pub fn dashboard(a: &Args) -> Result<(), String> {
    a.ensure_known(&["file", "width"])?;
    let Some(path) = a.get("file") else {
        return Err("dashboard needs --file FILE (a --timeseries-out export)".into());
    };
    let width: usize = a.get_or("width", 60)?;
    if width < 8 {
        return Err(format!("--width must be >= 8, got {width}"));
    }
    let export = load_export(path)?;
    let windows = export.windows();
    if windows == 0 {
        return Err(format!("{path}: export has no sample windows"));
    }
    let name_w = export
        .columns
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0);
    println!(
        "== {path} — {} series x {windows} windows, {:.0} ms/window ==",
        export.columns.len(),
        export.window_ns / 1e6
    );
    for (panel, cols) in panels(&export) {
        println!("-- {panel} --");
        for c in cols {
            let (name, values) = &export.columns[c];
            let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
            let stats = if present.is_empty() {
                "no samples".to_string()
            } else {
                let lo = present.iter().fold(f64::INFINITY, |a, &v| a.min(v));
                let hi = present.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v));
                let last = present[present.len() - 1];
                format!("min {lo:.2} max {hi:.2} last {last:.2}")
            };
            println!(" {name:<name_w$} {} {stats}", sparkline(values, width));
        }
    }
    Ok(())
}

/// One comparable scalar extracted from an export: metrics entries become
/// `counter:`/`gauge:`/`hist:<name>.mean`, timeseries columns become
/// `<name>.mean` over their present windows.
type Components = Vec<(String, f64)>;

/// Components whose growth counts as a regression: simulated durations
/// and latency quantiles. Everything else (counts, throughput, occupancy)
/// is reported when it moves but does not fail the diff.
fn higher_is_worse(name: &str) -> bool {
    name.ends_with("_ms")
        || name.ends_with("_us")
        || name.ends_with("_ns")
        || name.ends_with("_s")
        || name.ends_with(".mean")
        || name.contains("lat.")
        || name.contains(".p50")
        || name.contains(".p99")
}

fn timeseries_components(export: &Export) -> Components {
    export
        .columns
        .iter()
        .map(|(name, values)| {
            let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
            let mean = if present.is_empty() {
                0.0
            } else {
                present.iter().sum::<f64>() / present.len() as f64
            };
            (format!("{name}.mean"), mean)
        })
        .collect()
}

fn metrics_components(v: &Value) -> Result<Components, String> {
    let mut out = Vec::new();
    let section = |key: &str| -> Result<Vec<(String, Value)>, String> {
        match v.get(key) {
            Some(Value::Obj(entries)) => Ok(entries.clone()),
            _ => Err(format!("metrics JSON missing object '{key}'")),
        }
    };
    for (name, val) in section("counters")? {
        let n = val
            .as_f64()
            .ok_or_else(|| format!("counter '{name}' is not a number"))?;
        out.push((format!("counter:{name}"), n));
    }
    for (name, val) in section("gauges")? {
        let n = val
            .as_f64()
            .ok_or_else(|| format!("gauge '{name}' is not a number"))?;
        out.push((format!("gauge:{name}"), n));
    }
    for (name, val) in section("histograms")? {
        let count = val
            .get("count")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("histogram '{name}' missing count"))?;
        let sum = val
            .get("sum")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("histogram '{name}' missing sum"))?;
        let mean = if count > 0.0 { sum / count } else { 0.0 };
        out.push((format!("hist:{name}.mean"), mean));
    }
    Ok(out)
}

/// Loads either export format into comparable components. Timeseries
/// exports are sniffed by their TSV header or a `window_ns` key; anything
/// else must be a metrics JSON object.
fn load_components(path: &str) -> Result<Components, String> {
    let text = read_file(path)?;
    if text.starts_with("# longsight timeseries") {
        let export = Export::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        return Ok(timeseries_components(&export));
    }
    let v = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if v.get("window_ns").is_some() {
        let export = Export::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        return Ok(timeseries_components(&export));
    }
    metrics_components(&v).map_err(|e| format!("{path}: {e}"))
}

/// Relative delta in percent; `None` when the baseline is zero and the
/// candidate is not (an infinite ratio, reported as NEW SIGNAL).
fn delta_pct(base: f64, cand: f64) -> Option<f64> {
    if base == 0.0 {
        return (cand == 0.0).then_some(0.0);
    }
    Some((cand / base - 1.0) * 100.0)
}

/// `--baseline A --candidate B`: strict series-set comparison.
fn diff_exports(a: &Args) -> Result<(), String> {
    let base_path = a.get("baseline").map(str::to_string);
    let cand_path = a.get("candidate").map(str::to_string);
    let (Some(base_path), Some(cand_path)) = (base_path, cand_path) else {
        return Err(
            "perf-diff needs both --baseline and --candidate (or --gate / --self-check)".into(),
        );
    };
    let threshold: f64 = a.get_or("threshold-pct", 10.0)?;
    if !(threshold > 0.0 && threshold.is_finite()) {
        return Err(format!(
            "--threshold-pct must be a positive percentage, got {threshold}"
        ));
    }
    let base = load_components(&base_path)?;
    let cand = load_components(&cand_path)?;
    let base_names: Vec<&str> = base.iter().map(|(n, _)| n.as_str()).collect();
    let cand_names: Vec<&str> = cand.iter().map(|(n, _)| n.as_str()).collect();
    let missing: Vec<&str> = base_names
        .iter()
        .filter(|n| !cand_names.contains(n))
        .copied()
        .collect();
    let extra: Vec<&str> = cand_names
        .iter()
        .filter(|n| !base_names.contains(n))
        .copied()
        .collect();
    if !missing.is_empty() || !extra.is_empty() {
        return Err(format!(
            "component sets differ: missing from candidate [{}], new in candidate [{}]",
            missing.join(", "),
            extra.join(", ")
        ));
    }
    let mut regressions = Vec::new();
    let mut moved = 0usize;
    for (name, b) in &base {
        let c = cand
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        let label = match delta_pct(*b, c) {
            None => "new signal".to_string(),
            Some(d) if d.abs() > threshold => format!("{d:+.1}%"),
            Some(_) => continue,
        };
        moved += 1;
        let worse = higher_is_worse(name) && c > *b;
        let tag = if worse { "REGRESSED" } else { "changed" };
        println!("  {tag:<9} {name}: {b} -> {c} ({label})");
        if worse {
            regressions.push(name.clone());
        }
    }
    println!(
        "perf-diff: {} components, {moved} moved past {threshold}%, {} regressed",
        base.len(),
        regressions.len()
    );
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} component(s) regressed past {threshold}%: {}",
            regressions.len(),
            regressions.join(", ")
        ))
    }
}

/// `--self-check FILE`: structural validation of one timeseries export —
/// the CI hook that proves a freshly written export parses back.
fn self_check(path: &str) -> Result<(), String> {
    let export = load_export(path)?;
    if export.columns.is_empty() {
        return Err(format!("{path}: export has no series"));
    }
    let windows = export.windows();
    if windows == 0 {
        return Err(format!("{path}: export has no sample windows"));
    }
    for (name, values) in &export.columns {
        if values.len() != windows {
            return Err(format!(
                "{path}: series '{name}' has {} windows, expected {windows}",
                values.len()
            ));
        }
    }
    println!(
        "self-check ok: {path} — {} series x {windows} windows, {:.0} ms/window",
        export.columns.len(),
        export.window_ns / 1e6
    );
    Ok(())
}

/// One trajectory key resolved against the golden tables: which file,
/// which row (all matchers must hit), which `|`-separated column.
struct GateSpec {
    file: &'static str,
    matchers: Vec<(usize, String)>,
    field: usize,
}

/// Maps a `results/trajectory.tsv` key to its golden-table lookup. The key
/// grammar mirrors the tables: `sched_comparison/8s/slo-aware/...`,
/// `router_scaling/2r/jsq/...`, `lookahead/32slots/0.25ms/p99_token_ms`,
/// `fleet_availability/2r/0.10/breaker/...`,
/// `session_reuse/2r/0.90/affinity/...`, and
/// `fig7_kernel/packed/ns_per_key` (the host scan-kernel row — the pinned
/// value is ns per key, not ms, and wall-clock, so its threshold is set
/// generously in the trajectory file).
fn gate_spec(key: &str) -> Result<GateSpec, String> {
    let parts: Vec<&str> = key.split('/').collect();
    let part = |i: usize| -> Result<&str, String> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| format!("trajectory key '{key}' is missing segment {i}"))
    };
    match parts[0] {
        "sched_comparison" => {
            let rate = part(1)?
                .strip_suffix('s')
                .ok_or_else(|| format!("key '{key}': rate segment must end in 's'"))?;
            Ok(GateSpec {
                file: "results/sched_comparison.txt",
                matchers: vec![
                    (1, format!("{rate}/s")),
                    (2, part(2)?.to_string()),
                    (3, "interactive".to_string()),
                ],
                field: 8,
            })
        }
        "router_scaling" => {
            let n = part(1)?
                .strip_suffix('r')
                .ok_or_else(|| format!("key '{key}': replica segment must end in 'r'"))?;
            Ok(GateSpec {
                file: "results/router_scaling.txt",
                matchers: vec![(1, n.to_string()), (2, part(2)?.to_string())],
                field: 7,
            })
        }
        "lookahead" => {
            let slots = part(1)?
                .strip_suffix("slots")
                .ok_or_else(|| format!("key '{key}': slots segment must end in 'slots'"))?;
            let penalty = part(2)?
                .strip_suffix("ms")
                .ok_or_else(|| format!("key '{key}': penalty segment must end in 'ms'"))?;
            Ok(GateSpec {
                file: "results/lookahead.txt",
                matchers: vec![(1, slots.to_string()), (2, format!("{penalty} ms"))],
                field: 8,
            })
        }
        "fleet_availability" => {
            let n = part(1)?
                .strip_suffix('r')
                .ok_or_else(|| format!("key '{key}': replica segment must end in 'r'"))?;
            let breaker = match part(3)? {
                "breaker" => "on",
                "nobreaker" => "off",
                other => {
                    return Err(format!(
                        "key '{key}': segment 3 must be breaker|nobreaker, got '{other}'"
                    ))
                }
            };
            Ok(GateSpec {
                file: "results/fleet_availability.txt",
                matchers: vec![
                    (1, n.to_string()),
                    (2, part(2)?.to_string()),
                    (3, breaker.to_string()),
                ],
                field: 6,
            })
        }
        "session_reuse" => {
            let n = part(1)?
                .strip_suffix('r')
                .ok_or_else(|| format!("key '{key}': replica segment must end in 'r'"))?;
            Ok(GateSpec {
                file: "results/session_reuse.txt",
                matchers: vec![
                    (1, n.to_string()),
                    (2, part(2)?.to_string()),
                    (3, part(3)?.to_string()),
                ],
                field: 9,
            })
        }
        "fig7_kernel" => {
            if part(1)? != "packed" || part(2)? != "ns_per_key" {
                return Err(format!(
                    "key '{key}': only fig7_kernel/packed/ns_per_key is pinned"
                ));
            }
            Ok(GateSpec {
                file: "results/fig7_throughput.txt",
                matchers: vec![(1, "packed scan".to_string())],
                field: 4,
            })
        }
        other => Err(format!("unknown trajectory table '{other}' in key '{key}'")),
    }
}

/// Finds the spec's row in its golden table and extracts the latency
/// column: fields are `|`-separated and whitespace-trimmed, the value is
/// a number with an optional ` ms` suffix. First matching row wins, like
/// the awk scan this replaces.
fn table_lookup(spec: &GateSpec, text: &str) -> Result<f64, String> {
    for line in text.lines() {
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        let hit = spec
            .matchers
            .iter()
            .all(|(i, want)| fields.get(i - 1).copied() == Some(want.as_str()));
        if !hit {
            continue;
        }
        let raw = fields.get(spec.field - 1).ok_or_else(|| {
            format!(
                "{}: matched row has no field {} ('{line}')",
                spec.file, spec.field
            )
        })?;
        let num = raw.strip_suffix("ms").unwrap_or(raw).trim();
        return num.parse().map_err(|_| {
            format!(
                "{}: field {} is not a number: '{raw}'",
                spec.file, spec.field
            )
        });
    }
    Err(format!(
        "{}: no row matches {:?}",
        spec.file,
        spec.matchers
            .iter()
            .map(|(_, v)| v.as_str())
            .collect::<Vec<_>>()
    ))
}

/// `--gate TRAJ`: the CI trajectory gate. Each non-comment line of the
/// trajectory file is `key<TAB>pinned_ms[<TAB>threshold_pct]`; the current
/// value is re-read from the checked-in golden table and must not exceed
/// the pinned value by more than the threshold (default `--threshold-pct`,
/// overridable per key via the optional third column).
fn gate(a: &Args, traj_path: &str) -> Result<(), String> {
    let default_threshold: f64 = a.get_or("threshold-pct", 10.0)?;
    if !(default_threshold > 0.0 && default_threshold.is_finite()) {
        return Err(format!(
            "--threshold-pct must be a positive percentage, got {default_threshold}"
        ));
    }
    let traj = read_file(traj_path)?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (lineno, line) in traj.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 2 {
            return Err(format!(
                "{traj_path}:{}: expected key<TAB>p99_ms, got '{line}'",
                lineno + 1
            ));
        }
        let key = cols[0];
        let pinned: f64 = cols[1].parse().map_err(|_| {
            format!(
                "{traj_path}:{}: pinned value '{}' is not a number",
                lineno + 1,
                cols[1]
            )
        })?;
        let threshold = match cols.get(2) {
            None => default_threshold,
            Some(t) => {
                let t: f64 = t.parse().map_err(|_| {
                    format!(
                        "{traj_path}:{}: threshold '{t}' is not a number",
                        lineno + 1
                    )
                })?;
                if !(t > 0.0 && t.is_finite()) {
                    return Err(format!(
                        "{traj_path}:{}: threshold must be positive, got {t}",
                        lineno + 1
                    ));
                }
                t
            }
        };
        let spec = gate_spec(key)?;
        let current = table_lookup(&spec, &read_file(spec.file)?)?;
        checked += 1;
        if current > pinned * (1.0 + threshold / 100.0) {
            failures.push(format!(
                "{key} regressed: {current} ms vs pinned {pinned} ms ({:+.1}%, limit {threshold}%)",
                (current / pinned - 1.0) * 100.0
            ));
        } else {
            println!("   {key:<56} {current:>8} ms (pinned {pinned} ms, limit {threshold}%)");
        }
    }
    if checked == 0 {
        return Err(format!("{traj_path}: no trajectory entries to check"));
    }
    if failures.is_empty() {
        println!("trajectory gate passed: {checked} pinned tail(s) within limits");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// `longsight perf-diff` — three modes: `--self-check FILE` validates one
/// timeseries export, `--gate TRAJ` runs the CI trajectory gate, and
/// `--baseline A --candidate B` diffs two exports component by component.
pub fn perf_diff(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "self-check",
        "gate",
        "baseline",
        "candidate",
        "threshold-pct",
    ])?;
    let modes = [
        a.get("self-check").is_some(),
        a.get("gate").is_some(),
        a.get("baseline").is_some() || a.get("candidate").is_some(),
    ];
    if modes.iter().filter(|m| **m).count() > 1 {
        return Err(
            "pick one perf-diff mode: --self-check, --gate, or --baseline/--candidate".into(),
        );
    }
    if let Some(path) = a.get("self-check") {
        return self_check(path);
    }
    if let Some(traj) = a.get("gate") {
        return gate(a, traj);
    }
    diff_exports(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_and_marks_gaps() {
        let values = vec![Some(0.0), Some(1.0), None, Some(0.5)];
        let s = sparkline(&values, 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0], SPARK[0]);
        assert_eq!(chars[1], SPARK[7]);
        assert_eq!(chars[2], SPARK_GAP);
        assert_eq!(chars[3], SPARK[4]);
    }

    #[test]
    fn replica_prefixes_split_into_panels() {
        assert_eq!(replica_of("r0.queue.interactive"), Some(0));
        assert_eq!(replica_of("r12.up"), Some(12));
        assert_eq!(replica_of("arrivals"), None);
        assert_eq!(replica_of("rx.breaker"), None);
    }

    #[test]
    fn gate_keys_map_to_their_golden_tables() {
        let s = gate_spec("sched_comparison/8s/slo-aware/interactive_p99_request_ms").unwrap();
        assert_eq!(s.file, "results/sched_comparison.txt");
        assert_eq!(s.matchers[0], (1, "8/s".to_string()));
        assert_eq!(s.field, 8);
        let s = gate_spec("fleet_availability/2r/0.10/breaker/interactive_p99_request_ms").unwrap();
        assert_eq!(s.matchers[2], (3, "on".to_string()));
        assert_eq!(s.field, 6);
        let s = gate_spec("session_reuse/2r/0.90/affinity/interactive_p99_request_ms").unwrap();
        assert_eq!(s.file, "results/session_reuse.txt");
        assert_eq!(
            s.matchers,
            vec![
                (1, "2".to_string()),
                (2, "0.90".to_string()),
                (3, "affinity".to_string()),
            ]
        );
        assert_eq!(s.field, 9);
        assert!(gate_spec("session_reuse/2/0.90/affinity/x").is_err());
        assert!(gate_spec("unknown_table/1/2").is_err());
        let s = gate_spec("fig7_kernel/packed/ns_per_key").unwrap();
        assert_eq!(s.file, "results/fig7_throughput.txt");
        assert_eq!(s.matchers, vec![(1, "packed scan".to_string())]);
        assert_eq!(s.field, 4);
        assert!(gate_spec("fig7_kernel/perkey/ns_per_key").is_err());
    }

    #[test]
    fn kernel_row_lookup_reads_the_packed_ns_per_key() {
        let table = "\
 kernel       | keys  | dim | ns per key | speedup
 per-key scan | 65536 | 128 | 4.872      | 1.00x
 packed scan  | 65536 | 128 | 2.867      | 1.70x (bit-identical: yes)
";
        let spec = gate_spec("fig7_kernel/packed/ns_per_key").unwrap();
        assert_eq!(table_lookup(&spec, table).unwrap(), 2.867);
    }

    #[test]
    fn prefix_cache_gauges_land_in_replica_panels() {
        // The dashboard's per-replica grouping must pick up the session
        // prefix-cache gauges exactly like the queue/occupancy series.
        assert_eq!(replica_of("r0.prefix.reuse"), Some(0));
        assert_eq!(replica_of("r3.prefix.pinned_pages"), Some(3));
    }

    #[test]
    fn table_lookup_matches_trimmed_fields_and_strips_ms() {
        let table = "\
 Rate | Policy    | Class       | a | b | c | d | p99 req
 8/s  | slo-aware | interactive | 1 | 2 | 3 | 4 | 2249 ms
";
        let spec = gate_spec("sched_comparison/8s/slo-aware/interactive_p99_request_ms").unwrap();
        assert_eq!(table_lookup(&spec, table).unwrap(), 2249.0);
        let missing =
            gate_spec("sched_comparison/16s/slo-aware/interactive_p99_request_ms").unwrap();
        assert!(table_lookup(&missing, table).is_err());
    }

    #[test]
    fn higher_is_worse_targets_latency_components() {
        assert!(higher_is_worse("gauge:serve.step_ms"));
        assert!(higher_is_worse("lat.request_ms.p99.mean"));
        assert!(higher_is_worse("hist:sched.latency_ms.mean"));
        assert!(!higher_is_worse("counter:serve.fault_events"));
        assert!(!higher_is_worse("arrivals"));
    }

    #[test]
    fn delta_pct_treats_zero_baseline_as_new_signal() {
        assert_eq!(delta_pct(0.0, 0.0), Some(0.0));
        assert_eq!(delta_pct(0.0, 1.0), None);
        assert_eq!(delta_pct(100.0, 110.0), Some(10.000000000000009));
    }
}
