//! Subcommand implementations.

use crate::args::Args;
use longsight_core::tuner::{tune_thresholds, ProbeResult, TunerConfig};
use longsight_core::{
    training, HybridConfig, ItqConfig, LongSightBackend, RotationTable, ThresholdTable,
};
use longsight_dram::Geometry;
use longsight_drex::layout::{self, UserPartition};
use longsight_faults::{FaultInjector, FaultProfile, ReplicaFaultProfile, RetryPolicy};
use longsight_gpu::{DataParallelGpus, GpuSpec};
use longsight_model::{
    corpus, perplexity, DenseBackend, InductionParams, Model, ModelConfig, ModelWeights,
};
use longsight_obs::{BurnConfig, Recorder};
use longsight_sched::{BreakerConfig, RouterPolicy, SchedPolicy, SloMix};
use longsight_system::serving::{
    simulate_fleet_faulty, simulate_fleet_sessions, simulate_observed, simulate_scheduled,
    FleetFaultOptions, SchedOptions, ServeMetrics, WorkloadConfig,
};
use longsight_system::{
    AttAccSystem, GpuOnlySystem, LongSightConfig, LongSightSystem, LookaheadConfig, ServingSystem,
    SessionOptions, SlidingWindowSystem, TokenAttribution,
};
use longsight_tensor::SimRng;

fn model_flag(a: &Args) -> Result<ModelConfig, String> {
    match a.get("model").unwrap_or("8b") {
        "1b" => Ok(ModelConfig::llama3_1b()),
        "8b" => Ok(ModelConfig::llama3_8b()),
        other => Err(format!("unknown --model '{other}' (use 1b or 8b)")),
    }
}

/// Parses the shared fault-injection flags.
///
/// `--fault-profile` accepts `none`, `mild`, `severe`, or a rate in
/// `[0, 1]`; `--fault-seed` selects the deterministic fault timeline and
/// `--deadline-ms` overrides the per-attempt offload deadline.
fn fault_flags(a: &Args) -> Result<(FaultProfile, u64, RetryPolicy), String> {
    let profile = match a.get("fault-profile") {
        None => FaultProfile::disabled(),
        Some(spec) => FaultProfile::parse(spec)?,
    };
    let seed: u64 = a.get_or("fault-seed", 0)?;
    let mut retry = RetryPolicy::serving_default();
    if let Some(d) = a.get("deadline-ms") {
        let ms: f64 = d
            .parse()
            .map_err(|_| format!("invalid value '{d}' for --deadline-ms"))?;
        if !(ms > 0.0 && ms.is_finite()) {
            return Err(format!(
                "--deadline-ms must be a positive number, got '{d}'"
            ));
        }
        retry.offload_deadline_ns = ms * 1e6;
    }
    Ok((profile, seed, retry))
}

/// Parses the scheduler flags (`--sched`, `--mix`, `--page-tokens`,
/// `--prefill-chunk`, `--prefill-slots`, `--watermark`). Returns `None`
/// when none are given — the command then takes the legacy FIFO path with
/// no extra output.
///
/// `--mix` defaults to the representative 0.5/0.3/0.2 mix under
/// `--sched slo-aware` and to all-interactive under `--sched fifo`, so a
/// bare `--sched slo-aware` exercises preemption out of the box.
fn sched_flags(a: &Args) -> Result<Option<SchedOptions>, String> {
    let any = [
        "sched",
        "mix",
        "page-tokens",
        "prefill-chunk",
        "prefill-slots",
        "watermark",
    ]
    .iter()
    .any(|k| a.get(k).is_some());
    if !any {
        return Ok(None);
    }
    let policy = SchedPolicy::parse(a.get("sched").unwrap_or("slo-aware"))?;
    let mix = match a.get("mix") {
        Some(spec) => {
            let mix = SloMix::parse(spec)?;
            // The library normalizes any positive weights; the CLI is
            // stricter so a typo'd mix fails loudly instead of silently
            // rescaling.
            let sum = mix.interactive + mix.batch + mix.best_effort;
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!(
                    "--mix fractions must sum to 1, got '{spec}' (sum {sum})"
                ));
            }
            mix
        }
        None if policy == SchedPolicy::SloAware => SloMix::mixed(),
        None => SloMix::all_interactive(),
    };
    let watermark: f64 = a.get_or("watermark", 0.9)?;
    if !(watermark > 0.0 && watermark <= 1.0) {
        return Err(format!("--watermark must be in (0, 1], got {watermark}"));
    }
    let page_tokens: usize = a.get_or("page-tokens", 1024)?;
    if page_tokens == 0 {
        return Err("--page-tokens must be positive".into());
    }
    let prefill_chunk_tokens: usize = a.get_or("prefill-chunk", 8192)?;
    if prefill_chunk_tokens == 0 {
        return Err("--prefill-chunk must be positive".into());
    }
    let prefill_slots: usize = a.get_or("prefill-slots", 1)?;
    if prefill_slots == 0 {
        return Err("--prefill-slots must be >= 1 (0 slots can never finish a prefill)".into());
    }
    Ok(Some(SchedOptions {
        policy,
        mix,
        page_tokens,
        prefill_chunk_tokens,
        prefill_slots,
        hbm_watermark: watermark,
    }))
}

/// Parses the fleet failure-domain flags (`--crash-profile`,
/// `--crash-seed`, `--breaker on|off`, `--shed-cap`).
///
/// `--crash-profile` accepts `none`, `mild`, `severe`, or a bare
/// per-interval crash rate in `[0, 1]`; `--crash-seed` picks the
/// deterministic replica fault timeline (independent of the workload
/// seed). The breaker defaults to on whenever a crash profile is enabled
/// — `--breaker off` is the naive baseline that keeps routing into dead
/// replicas. `--shed-cap N` arms the admission controller with per-class
/// queue caps of N best-effort / 2N batch / 4N interactive.
fn fleet_fault_flags(a: &Args) -> Result<FleetFaultOptions, String> {
    let profile = match a.get("crash-profile") {
        Some(name) => ReplicaFaultProfile::parse(name)?,
        None => ReplicaFaultProfile::disabled(),
    };
    let fault_seed: u64 = a.get_or("crash-seed", 0)?;
    let breaker = match a.get("breaker") {
        None => profile.is_enabled().then(BreakerConfig::serving_default),
        Some("on") => Some(BreakerConfig::serving_default()),
        Some("off") => None,
        Some(other) => return Err(format!("--breaker must be 'on' or 'off', got '{other}'")),
    };
    let shed_queue_cap = match a.get("shed-cap") {
        None => None,
        Some(s) => {
            let cap: usize = s
                .parse()
                .map_err(|_| format!("--shed-cap must be a positive integer, got '{s}'"))?;
            if cap == 0 {
                return Err("--shed-cap must be >= 1 (a zero cap sheds everything)".into());
            }
            Some(cap)
        }
    };
    Ok(FleetFaultOptions {
        profile,
        fault_seed,
        breaker,
        shed_queue_cap,
    })
}

/// Parses the lookahead-pipeline flags (`--lookahead on|off`,
/// `--spec-slots`, `--spec-miss`, `--spec-penalty-ms`). Returns `None`
/// when none are given — the command then takes the legacy synchronous
/// path, byte-identical to builds that predate the pipeline. An explicit
/// `--lookahead off` also returns a config (the disabled one), so the
/// gated-off path is exercised through the same plumbing.
fn lookahead_flags(a: &Args) -> Result<Option<LookaheadConfig>, String> {
    let any = ["lookahead", "spec-slots", "spec-miss", "spec-penalty-ms"]
        .iter()
        .any(|k| a.get(k).is_some());
    if !any {
        return Ok(None);
    }
    let enabled = match a.get("lookahead").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("invalid --lookahead '{other}' (use on or off)")),
    };
    let mut la = if enabled {
        LookaheadConfig::serving_default()
    } else {
        LookaheadConfig::disabled()
    };
    la.slots = a.get_or("spec-slots", la.slots)?;
    if enabled && la.slots == 0 {
        return Err("--spec-slots must be >= 1 (an empty pool can never issue)".into());
    }
    la.miss_rate = a.get_or("spec-miss", la.miss_rate)?;
    if !(0.0..=1.0).contains(&la.miss_rate) {
        return Err(format!(
            "--spec-miss must be in [0, 1], got {}",
            la.miss_rate
        ));
    }
    let penalty_ms: f64 = a.get_or("spec-penalty-ms", la.refilter_penalty_ns / 1e6)?;
    if !(penalty_ms >= 0.0 && penalty_ms.is_finite()) {
        return Err(format!(
            "--spec-penalty-ms must be a non-negative number, got {penalty_ms}"
        ));
    }
    la.refilter_penalty_ns = penalty_ms * 1e6;
    Ok(Some(la))
}

/// Parses the session-workload flags (`--sessions`, `--turns`,
/// `--think-time-ms`, `--reuse`, `--prefix-cache`). `--sessions 0` (or the
/// flag absent) disables the session workload; the follow-up flags without
/// `--sessions` are then a contradiction, not a silent no-op, so a typo'd
/// sweep fails loudly instead of re-running the Poisson baseline.
fn session_flags(a: &Args) -> Result<SessionOptions, String> {
    let sessions: usize = a.get_or("sessions", 0)?;
    if sessions == 0 {
        for k in ["turns", "think-time-ms", "reuse", "prefix-cache"] {
            if a.get(k).is_some() {
                return Err(format!(
                    "--{k} needs --sessions >= 1 (no session workload armed)"
                ));
            }
        }
        return Ok(SessionOptions::disabled());
    }
    let turns: usize = a.get_or("turns", 4)?;
    if turns == 0 {
        return Err("--turns must be >= 1 (a session needs its opening turn)".into());
    }
    let think_time_ms: f64 = a.get_or("think-time-ms", 2000.0)?;
    if !(think_time_ms >= 0.0 && think_time_ms.is_finite()) {
        return Err(format!(
            "--think-time-ms must be a non-negative number, got {think_time_ms}"
        ));
    }
    let reuse: f64 = a.get_or("reuse", 0.5)?;
    if !(0.0..=1.0).contains(&reuse) {
        return Err(format!("--reuse must be in [0, 1], got {reuse}"));
    }
    let prefix_cache_pages: usize = a.get_or("prefix-cache", 4096)?;
    Ok(SessionOptions {
        sessions,
        turns,
        think_time_ms,
        reuse,
        prefix_cache_pages,
    })
}

/// Export paths selected by the observability flags.
struct ObsPaths {
    trace: Option<String>,
    metrics: Option<String>,
    timeseries: Option<String>,
}

/// Builds the recorder selected by `--trace-out` / `--metrics-out` /
/// `--timeseries-out` (disabled — and thereby free — when none is given)
/// together with the output paths. `--timeseries-out` additionally arms
/// the windowed sampler; `--ts-window-ms` sets its base window (default
/// 250 ms of simulated time) and is rejected without `--timeseries-out`.
fn obs_flags(a: &Args) -> Result<(Recorder, ObsPaths), String> {
    let paths = ObsPaths {
        trace: a.get("trace-out").map(str::to_string),
        metrics: a.get("metrics-out").map(str::to_string),
        timeseries: a.get("timeseries-out").map(str::to_string),
    };
    let window_ms: f64 = a.get_or("ts-window-ms", 250.0)?;
    if paths.timeseries.is_none() {
        if a.get("ts-window-ms").is_some() {
            return Err("--ts-window-ms needs --timeseries-out".into());
        }
    } else if !(window_ms > 0.0 && window_ms.is_finite()) {
        return Err(format!(
            "--ts-window-ms must be a positive number of milliseconds, got {window_ms}"
        ));
    }
    let mut rec = if paths.trace.is_some() || paths.metrics.is_some() || paths.timeseries.is_some()
    {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    if paths.timeseries.is_some() {
        rec.enable_timeseries(window_ms * 1e6, BurnConfig::default());
    }
    Ok((rec, paths))
}

/// Writes the recorded trace/metrics/timeseries to the requested files.
/// The timeseries export format follows the file extension: `.json` gets
/// the JSON form, anything else the TSV form.
fn write_observability(rec: &Recorder, paths: &ObsPaths) -> Result<(), String> {
    if let Some(path) = paths.trace.as_deref() {
        std::fs::write(path, rec.chrome_trace_json())
            .map_err(|e| format!("writing --trace-out {path}: {e}"))?;
        println!("  trace written to {path}");
    }
    if let Some(path) = paths.metrics.as_deref() {
        std::fs::write(path, rec.metrics_json())
            .map_err(|e| format!("writing --metrics-out {path}: {e}"))?;
        println!("  metrics written to {path}");
    }
    if let Some(path) = paths.timeseries.as_deref() {
        let body = if path.ends_with(".json") {
            rec.timeseries.to_json()
        } else {
            rec.timeseries.to_tsv()
        };
        std::fs::write(path, body).map_err(|e| format!("writing --timeseries-out {path}: {e}"))?;
        println!("  timeseries written to {path}");
    }
    Ok(())
}

/// Prints the paged KV-cache capacity panel for `serve` when
/// `--page-tokens` / `--watermark` is given: page geometry on both tiers
/// and how many users of this context the memory manager would admit.
fn print_paged_kv(a: &Args, sys: &dyn ServingSystem, ctx: usize) -> Result<(), String> {
    if a.get("page-tokens").is_none() && a.get("watermark").is_none() {
        return Ok(());
    }
    let page_tokens: usize = a.get_or("page-tokens", 1024)?;
    if page_tokens == 0 {
        return Err("--page-tokens must be positive".into());
    }
    let watermark: f64 = a.get_or("watermark", 0.9)?;
    if !(watermark > 0.0 && watermark <= 1.0) {
        return Err(format!("--watermark must be in (0, 1], got {watermark}"));
    }
    match sys.kv_geometry(page_tokens) {
        Some(g) => {
            println!(
                "  paged KV: {} tokens/page | HBM {} pages ({} usable at {:.0}% watermark) | DReX {} pages",
                g.page_tokens,
                g.hbm_capacity_pages,
                g.page_config(watermark).hbm_limit_pages(),
                100.0 * watermark,
                g.drex_capacity_pages
            );
            println!(
                "  paged KV admits {} users at {} tokens ({} HBM + {} DReX pages each)",
                g.memory_max_users(ctx, watermark),
                ctx,
                g.hbm_pages_for(ctx),
                g.drex_pages_for(ctx)
            );
        }
        None => println!("  paged KV: no page geometry for this system"),
    }
    Ok(())
}

fn build_system(
    name: &str,
    model: ModelConfig,
    lookahead: Option<LookaheadConfig>,
) -> Result<Box<dyn ServingSystem>, String> {
    if let Some(la) = lookahead {
        if name != "longsight" {
            return Err(format!(
                "--lookahead applies to --system longsight only (got '{name}')"
            ));
        }
        return Ok(Box::new(LongSightSystem::new(
            LongSightConfig::paper_default().with_lookahead(la),
            model,
        )));
    }
    Ok(match name {
        "longsight" => Box::new(LongSightSystem::new(
            LongSightConfig::paper_default(),
            model,
        )),
        "gpu" => Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model,
        }),
        "gpu2" => Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 2),
            model,
        }),
        "attacc" => Box::new(AttAccSystem::h100_pim(model)),
        "window" => Box::new(SlidingWindowSystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model,
            window: 1024,
            sinks: 16,
        }),
        other => return Err(format!("unknown --system '{other}'")),
    })
}

/// `longsight quality` — the artifact's example run.
pub fn quality(a: &Args) -> Result<(), String> {
    a.ensure_known(&["ctx", "window", "k", "threshold", "itq", "seed"])?;
    let ctx: usize = a.get_or("ctx", 1024)?;
    let window: usize = a.get_or("window", 256)?;
    let k: usize = a.get_or("k", 128)?;
    let seed: u64 = a.get_or("seed", 2025)?;
    let use_itq: bool = a.get_or("itq", true)?;

    let cfg = ModelConfig::tiny();
    let threshold: u32 = a.get_or("threshold", cfg.head_dim as u32 / 2 + 5)?;
    let mut rng = SimRng::seed_from(seed);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), ctx, &mut rng);
    let skip = (ctx / 16).max(2);

    let dense = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), skip);
    let rotations = if use_itq {
        training::train_rotations(&model, &text.tokens[..512.min(ctx)], &ItqConfig::default())
    } else {
        RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim)
    };
    let mut hybrid = LongSightBackend::new(
        HybridConfig {
            window,
            sinks: 16,
            top_k: k,
        },
        ThresholdTable::uniform(cfg.layers, cfg.kv_heads, threshold),
        rotations,
    );
    let sparse = perplexity::evaluate(&model, &text, &mut hybrid, skip);

    println!("context {ctx}, window {window}, k {k}, threshold {threshold}, itq {use_itq}");
    println!("dense perplexity:     {:.2}", dense.perplexity);
    println!(
        "LongSight perplexity: {:.2} ({:+.2}%)",
        sparse.perplexity,
        100.0 * sparse.relative_increase_over(&dense)
    );
    let s = hybrid.stats();
    println!(
        "filter ratio (non-window): {:.1}x | sparsity: {:.1}%",
        s.filter_ratio_nonwindow(),
        100.0 * s.sparsity()
    );
    Ok(())
}

fn print_report(name: &str, r: &longsight_system::StepReport) {
    print!("{}", r.to_text(name));
}

/// Prints a serving run's speculation counters (silent when the run never
/// speculated, keeping lookahead-off output byte-identical).
fn print_spec_counters(m: &ServeMetrics) {
    if m.spec_hits + m.spec_misses + m.spec_denied > 0 {
        println!(
            "  speculation: {} hit | {} miss | {} denied",
            m.spec_hits, m.spec_misses, m.spec_denied
        );
    }
}

/// Prints the speculation summary of a lookahead-on step report (silent
/// for lookahead-off reports, keeping legacy output byte-identical).
fn print_spec_line(r: &longsight_system::StepReport) {
    if let Some(s) = r.spec {
        println!(
            "  speculation: chain {:.3} ms | hidden {:.3} ms | visible {:.3} ms | serial {:.3} ms/token | {} slots | miss rate {}",
            s.chain_ns / 1e6,
            (s.chain_ns - s.hit_visible_ns) / 1e6,
            s.hit_visible_ns / 1e6,
            s.serial_step_ns / 1e6,
            s.slots,
            s.miss_rate
        );
    }
}

/// `longsight serve` — one evaluation row.
pub fn serve(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "model",
        "ctx",
        "users",
        "system",
        "fault-profile",
        "fault-seed",
        "deadline-ms",
        "trace-out",
        "metrics-out",
        "timeseries-out",
        "ts-window-ms",
        "page-tokens",
        "watermark",
        "lookahead",
        "spec-slots",
        "spec-miss",
        "spec-penalty-ms",
    ])?;
    let model = model_flag(a)?;
    let ctx: usize = a.get_or("ctx", 131_072)?;
    let users: usize = a.get_or("users", 8)?;
    let (faults, fault_seed, retry) = fault_flags(a)?;
    let lookahead = lookahead_flags(a)?;
    let (mut rec, obs_paths) = obs_flags(a)?;
    let sys_name = a.get("system").unwrap_or("longsight");
    if faults.is_enabled() {
        if sys_name != "longsight" {
            return Err(format!(
                "--fault-profile applies to --system longsight only (got '{sys_name}')"
            ));
        }
        let mut cfg = LongSightConfig::paper_default().with_faults(faults, fault_seed);
        cfg.retry = retry;
        if let Some(la) = lookahead {
            cfg = cfg.with_lookahead(la);
        }
        let mut sys = LongSightSystem::new(cfg, model);
        match sys.evaluate_with_faults(users, ctx) {
            Ok((r, log, stats)) => {
                print_report(&sys.name(), &r);
                print_spec_line(&r);
                println!(
                    "  faults (seed {fault_seed}): {} events | retried {} | degraded {} | failed {}",
                    log.len(),
                    stats.retried_tokens,
                    stats.degraded_tokens,
                    stats.failed_requests
                );
                if rec.is_enabled() {
                    ServingSystem::record_step_detail(&mut sys, users, ctx, &mut rec, 0.0);
                    let faults_track = rec.track("faults");
                    log.record_tail_into(0, &mut rec, faults_track, 0.0);
                    rec.counter_add("serve.fault_events", log.len() as u64);
                    rec.counter_add("serve.retried_tokens", stats.retried_tokens as u64);
                    rec.counter_add("serve.degraded_tokens", stats.degraded_tokens as u64);
                    rec.gauge_set("serve.step_ms", r.latency_ms());
                    rec.gauge_set("serve.throughput_tps", r.throughput_tps);
                }
            }
            Err(e) => println!(
                "{}: infeasible at {} users x {} tokens ({e})",
                sys.name(),
                users,
                ctx
            ),
        }
        println!("  max users at this context: {}", sys.max_users(ctx));
        print_paged_kv(a, &sys, ctx)?;
        return write_observability(&rec, &obs_paths);
    }
    let mut sys = build_system(sys_name, model, lookahead)?;
    match sys.evaluate(users, ctx) {
        Ok(r) => {
            print_report(&sys.name(), &r);
            print_spec_line(&r);
            if rec.is_enabled() {
                sys.record_step_detail(users, ctx, &mut rec, 0.0);
                rec.gauge_set("serve.step_ms", r.latency_ms());
                rec.gauge_set("serve.throughput_tps", r.throughput_tps);
            }
        }
        Err(e) => println!(
            "{}: infeasible at {} users x {} tokens ({e})",
            sys.name(),
            users,
            ctx
        ),
    }
    println!("  max users at this context: {}", sys.max_users(ctx));
    print_paged_kv(a, sys.as_ref(), ctx)?;
    write_observability(&rec, &obs_paths)
}

/// `longsight loadtest` — closed-loop serving simulation.
pub fn loadtest(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "model",
        "rate",
        "duration",
        "ctx-min",
        "ctx-max",
        "out-min",
        "out-max",
        "system",
        "seed",
        "fault-profile",
        "fault-seed",
        "deadline-ms",
        "trace-out",
        "metrics-out",
        "timeseries-out",
        "ts-window-ms",
        "sched",
        "mix",
        "page-tokens",
        "prefill-chunk",
        "prefill-slots",
        "watermark",
        "replicas",
        "router",
        "crash-profile",
        "crash-seed",
        "breaker",
        "shed-cap",
        "lookahead",
        "spec-slots",
        "spec-miss",
        "spec-penalty-ms",
        "sessions",
        "turns",
        "think-time-ms",
        "reuse",
        "prefix-cache",
    ])?;
    let model = model_flag(a)?;
    let wl = WorkloadConfig {
        arrivals_per_s: a.get_or("rate", 2.0)?,
        context_tokens: (a.get_or("ctx-min", 32_768)?, a.get_or("ctx-max", 131_072)?),
        output_tokens: (a.get_or("out-min", 32)?, a.get_or("out-max", 128)?),
        duration_s: a.get_or("duration", 10.0)?,
        seed: a.get_or("seed", 7)?,
    };
    let (faults, fault_seed, retry) = fault_flags(a)?;
    let sched_opts = sched_flags(a)?;
    let lookahead = lookahead_flags(a)?;
    let (mut rec, obs_paths) = obs_flags(a)?;
    let sys_name = a.get("system").unwrap_or("longsight");
    let injected = faults.is_enabled();
    let replicas: usize = a.get_or("replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be >= 1".into());
    }
    if replicas > 64 {
        return Err(format!("--replicas {replicas} is past the 64-replica cap"));
    }
    let router = RouterPolicy::parse(a.get("router").unwrap_or("jsq"))?;
    let sess = session_flags(a)?;
    if router == RouterPolicy::Affinity && replicas < 2 {
        return Err(
            "--router affinity needs --replicas >= 2 (one replica always owns every prefix)".into(),
        );
    }
    let fopts = fleet_fault_flags(a)?;
    if fopts.is_active() && replicas < 2 {
        return Err(
            "--crash-profile/--breaker/--shed-cap need --replicas >= 2 (nothing to fail over to)"
                .into(),
        );
    }
    if sess.is_active() && fopts.is_active() {
        return Err(
            "--sessions cannot combine with --crash-profile/--breaker/--shed-cap (the session \
             driver runs the fleet fault-free)"
                .into(),
        );
    }
    if replicas > 1 || sess.is_active() {
        if injected {
            return Err(
                "--fault-profile applies to single-replica runs only (fleets use --crash-profile)"
                    .into(),
            );
        }
        // A bare `--replicas N` gets the representative SLO-aware setup.
        let opts = sched_opts.unwrap_or_else(|| SchedOptions::slo_aware(SloMix::mixed()));
        if fopts.is_active() && opts.policy != SchedPolicy::SloAware {
            return Err("fleet fault domains require --sched slo-aware".into());
        }
        let mut systems = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            systems.push(build_system(sys_name, model.clone(), lookahead)?);
        }
        let (m, fleet) = if sess.is_active() {
            simulate_fleet_sessions(&mut systems, &model, &wl, &opts, router, &sess, &mut rec)
        } else {
            simulate_fleet_faulty(&mut systems, &model, &wl, &opts, router, &fopts, &mut rec)
        };
        println!(
            "{} x{replicas} under {:.1} req/s for {:.0}s ({}-{} ctx tokens), {} scheduler, {} router:",
            systems[0].name(),
            wl.arrivals_per_s,
            wl.duration_s,
            wl.context_tokens.0,
            wl.context_tokens.1,
            opts.policy.name(),
            router.name()
        );
        if fopts.is_active() {
            println!(
                "  fault domains: crash profile {} (seed {}) | breaker {} | shed cap {}",
                if fopts.profile.is_enabled() {
                    format!("on ({:.2}/interval)", fopts.profile.crash_rate)
                } else {
                    "off".to_string()
                },
                fopts.fault_seed,
                if fopts.breaker.is_some() { "on" } else { "off" },
                fopts
                    .shed_queue_cap
                    .map_or("off".to_string(), |c| c.to_string()),
            );
        }
        if sess.is_active() {
            println!(
                "  session workload: {} sessions x {} turns | think {:.0} ms | reuse {:.2} | prefix cache {} pages/replica",
                sess.sessions, sess.turns, sess.think_time_ms, sess.reuse, sess.prefix_cache_pages
            );
        }
        print!("{}", m.to_text());
        print_spec_counters(&m);
        print!("{}", fleet.to_text());
        if let Some(v) = &fleet.audit_violation {
            return Err(format!("fleet audit failed: {v}"));
        }
        return write_observability(&rec, &obs_paths);
    }
    let mut sys = build_system(sys_name, model.clone(), lookahead)?;
    if let Some(opts) = sched_opts {
        let inj;
        let fault_args = if injected {
            inj = FaultInjector::new(faults, fault_seed);
            Some((&inj, &retry))
        } else {
            None
        };
        let (m, rep, fault_log) =
            simulate_scheduled(sys.as_mut(), &model, &wl, &opts, fault_args, &mut rec, None);
        println!(
            "{} under {:.1} req/s for {:.0}s ({}-{} ctx tokens), {} scheduler:",
            sys.name(),
            wl.arrivals_per_s,
            wl.duration_s,
            wl.context_tokens.0,
            wl.context_tokens.1,
            opts.policy.name()
        );
        print!("{}", m.to_text());
        print_spec_counters(&m);
        print!("{}", rep.to_text());
        if injected {
            println!(
                "  faults (seed {fault_seed}): {} events | retried {} | degraded {} | failed requests {}",
                fault_log.len(),
                m.retried_tokens,
                m.degraded_tokens,
                m.failed_requests
            );
        }
        return write_observability(&rec, &obs_paths);
    }
    let (m, fault_log) = if injected {
        let inj = FaultInjector::new(faults, fault_seed);
        simulate_observed(
            sys.as_mut(),
            &model,
            &wl,
            Some((&inj, &retry)),
            &mut rec,
            None,
        )
    } else {
        simulate_observed(sys.as_mut(), &model, &wl, None, &mut rec, None)
    };
    println!(
        "{} under {:.1} req/s for {:.0}s ({}-{} ctx tokens):",
        sys.name(),
        wl.arrivals_per_s,
        wl.duration_s,
        wl.context_tokens.0,
        wl.context_tokens.1
    );
    print!("{}", m.to_text());
    print_spec_counters(&m);
    if injected {
        println!(
            "  faults (seed {fault_seed}): {} events | retried {} | degraded {} ({:.2}% of tokens) | failed requests {}",
            fault_log.len(),
            m.retried_tokens,
            m.degraded_tokens,
            100.0 * m.degraded_quality_delta,
            m.failed_requests
        );
    }
    write_observability(&rec, &obs_paths)
}

/// `longsight profile` — per-token latency attribution over a serving run.
///
/// Runs the same closed-loop simulation as `loadtest` (fixed 128K contexts
/// by default) while decomposing every generated token's latency into the
/// window / weights / merge / filter / score / queue / link / retry
/// components. The `total` row reproduces the run's reported token-latency
/// p50/p99 exactly, and the mean column sums to the mean token latency.
///
/// `--host-kernels on` appends the host-side SCF scan-kernel comparison:
/// the legacy per-key `scf_pass` walk (the baseline) against the bitplane
/// `filter_block_packed` kernel over the same packed sign store. The
/// attribution rows above it are simulated device time and are unaffected;
/// this section profiles the simulator's own scan hot path, wall-clock.
pub fn profile(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "model",
        "rate",
        "duration",
        "ctx-min",
        "ctx-max",
        "out-min",
        "out-max",
        "system",
        "seed",
        "fault-profile",
        "fault-seed",
        "deadline-ms",
        "trace-out",
        "metrics-out",
        "lookahead",
        "spec-slots",
        "spec-miss",
        "spec-penalty-ms",
        "host-kernels",
    ])?;
    let host_kernels = match a.get("host-kernels").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(format!(
                "--host-kernels must be 'on' or 'off', got '{other}'"
            ))
        }
    };
    let model = model_flag(a)?;
    let wl = WorkloadConfig {
        arrivals_per_s: a.get_or("rate", 2.0)?,
        context_tokens: (a.get_or("ctx-min", 131_072)?, a.get_or("ctx-max", 131_072)?),
        output_tokens: (a.get_or("out-min", 32)?, a.get_or("out-max", 128)?),
        duration_s: a.get_or("duration", 10.0)?,
        seed: a.get_or("seed", 7)?,
    };
    let (faults, fault_seed, retry) = fault_flags(a)?;
    let lookahead = lookahead_flags(a)?;
    let (mut rec, obs_paths) = obs_flags(a)?;
    let mut sys = build_system(
        a.get("system").unwrap_or("longsight"),
        model.clone(),
        lookahead,
    )?;
    let injected = faults.is_enabled();
    let mut attr = TokenAttribution::new();
    let (m, fault_log) = if injected {
        let inj = FaultInjector::new(faults, fault_seed);
        simulate_observed(
            sys.as_mut(),
            &model,
            &wl,
            Some((&inj, &retry)),
            &mut rec,
            Some(&mut attr),
        )
    } else {
        simulate_observed(sys.as_mut(), &model, &wl, None, &mut rec, Some(&mut attr))
    };
    println!(
        "{} per-token latency attribution under {:.1} req/s for {:.0}s ({}-{} ctx tokens):",
        sys.name(),
        wl.arrivals_per_s,
        wl.duration_s,
        wl.context_tokens.0,
        wl.context_tokens.1
    );
    print!("{}", attr.to_table());
    println!(
        "  tokens {} | reported token latency p50 {:.2} ms  p99 {:.2} ms",
        attr.len(),
        m.p50_token_ms,
        m.p99_token_ms
    );
    if injected {
        println!(
            "  faults (seed {fault_seed}): {} events | retried {} | degraded {} | failed requests {}",
            fault_log.len(),
            m.retried_tokens,
            m.degraded_tokens,
            m.failed_requests
        );
    }
    if host_kernels {
        let kb = longsight_bench::fig7::scan_kernel_bench(65_536, 128);
        println!();
        longsight_bench::print_table(
            "host SCF scan kernel: per-key baseline vs bitplane-packed (wall-clock)",
            &["kernel", "keys", "dim", "ns per key", "speedup"],
            &longsight_bench::fig7::scan_kernel_rows(&kb),
        );
        if !kb.identical {
            return Err("packed scan kernel diverged from the per-key baseline".into());
        }
    }
    write_observability(&rec, &obs_paths)
}

/// `longsight trace-validate` — checks that a `--trace-out` file is valid,
/// non-empty Chrome trace-event JSON (the format chrome://tracing and
/// Perfetto load).
pub fn trace_validate(a: &Args) -> Result<(), String> {
    a.ensure_known(&["file"])?;
    let path = a.get("file").ok_or("trace-validate needs --file PATH")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = longsight_obs::json::parse(&src).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("{path}: missing traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }
    let (mut spans, mut instants, mut meta) = (0usize, 0usize, 0usize);
    for e in events {
        match e.get("ph").and_then(|p| p.as_str()) {
            Some("X") => spans += 1,
            Some("i") => instants += 1,
            Some("M") => meta += 1,
            other => {
                return Err(format!(
                    "{path}: unexpected event phase {other:?} (want X, i, or M)"
                ))
            }
        }
    }
    println!(
        "{path}: valid Chrome trace — {} events ({spans} spans, {instants} instants, {meta} metadata)",
        events.len()
    );
    Ok(())
}

/// `longsight offload` — Fig 8-style DReX profile.
pub fn offload(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "model",
        "ctx",
        "users",
        "fault-profile",
        "fault-seed",
        "deadline-ms",
        "trace-out",
        "metrics-out",
        "lookahead",
        "spec-slots",
        "spec-miss",
        "spec-penalty-ms",
    ])?;
    let model = model_flag(a)?;
    let ctx: usize = a.get_or("ctx", 131_072)?;
    let users: usize = a.get_or("users", 1)?;
    let (faults, fault_seed, retry) = fault_flags(a)?;
    let lookahead = lookahead_flags(a)?;
    let (mut rec, obs_paths) = obs_flags(a)?;
    let injected = faults.is_enabled();
    let mut cfg = LongSightConfig::paper_default().with_faults(faults, fault_seed);
    cfg.retry = retry;
    if let Some(la) = lookahead {
        cfg = cfg.with_lookahead(la);
    }
    let sys = LongSightSystem::new(cfg, model);
    let (observed, p) = sys.drex_layer_traced(users, ctx, &mut rec, 0.0);
    if rec.is_enabled() {
        rec.gauge_set("offload.observed_us", observed / 1e3);
        rec.gauge_set("offload.queue_wait_us", p.queue_wait_ns / 1e3);
        rec.gauge_set("offload.value_cxl_us", p.value_cxl_ns / 1e3);
    }
    println!("DReX offload profile: {users} user(s), {ctx} tokens, per layer:");
    println!("  filter      {:>10.2} us", p.filter_ns / 1e3);
    println!("  bitmap read {:>10.2} us", p.bitmap_ns / 1e3);
    println!("  addr gen    {:>10.2} us", p.addr_gen_ns / 1e3);
    println!("  fetch+dot   {:>10.2} us", p.fetch_score_ns / 1e3);
    println!("  top-k       {:>10.2} us", p.topk_ns / 1e3);
    println!("  queue wait  {:>10.2} us", p.queue_wait_ns / 1e3);
    println!("  value/CXL   {:>10.2} us", p.value_cxl_ns / 1e3);
    println!("  observed    {:>10.2} us (last user)", observed / 1e3);
    if lookahead.is_some_and(|la| la.enabled) {
        // The issue/complete halves the lookahead pipeline puts in flight:
        // issue covers the speculative chain up to device-ready, complete
        // the polling + value read the GPU pays at use time.
        let mut quiet = Recorder::disabled();
        if let Some(issued) = sys.drex_layer_issue(users, ctx, &mut quiet, 0.0) {
            let (complete_observed, _) = sys.drex_layer_complete(&issued, &mut quiet, 0.0);
            println!(
                "  issue ready {:>10.2} us (speculative half: filter->topk + queue)",
                issued.ready_rel_ns / 1e3
            );
            println!(
                "  complete    {:>10.2} us (poll + value read at use time)",
                (complete_observed - issued.ready_rel_ns) / 1e3
            );
        }
    }
    if injected {
        let f = sys.drex_layer_faulty(users, ctx);
        println!(
            "  faulted     {:>10.2} us (seed {fault_seed}: {} events, {} replay rounds, {} straggled slices, retried {}, degraded {})",
            f.layer_ns / 1e3,
            f.log.len(),
            f.replay_rounds,
            f.straggled_slices,
            f.stats.retried_tokens,
            f.stats.degraded_tokens
        );
        if rec.is_enabled() {
            let faults_track = rec.track("faults");
            f.log.record_tail_into(0, &mut rec, faults_track, 0.0);
            rec.counter_add("offload.fault_events", f.log.len() as u64);
            rec.gauge_set("offload.faulted_us", f.layer_ns / 1e3);
        }
    }
    write_observability(&rec, &obs_paths)
}

/// `longsight tune` — the §8.1.3 threshold tuner.
pub fn tune(a: &Args) -> Result<(), String> {
    a.ensure_known(&["ctx", "window", "k", "budget", "seed"])?;
    let ctx: usize = a.get_or("ctx", 768)?;
    let window: usize = a.get_or("window", 192)?;
    let k: usize = a.get_or("k", 96)?;
    let budget: f64 = a.get_or("budget", 0.05)?;
    let seed: u64 = a.get_or("seed", 2025)?;

    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(seed);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), ctx, &mut rng);
    let rotations =
        training::train_rotations(&model, &text.tokens[..512.min(ctx)], &ItqConfig::default());
    let hybrid_cfg = HybridConfig {
        window,
        sinks: 16,
        top_k: k,
    };

    let outcome = tune_thresholds(
        cfg.layers,
        cfg.kv_heads,
        &TunerConfig {
            quality_budget: budget,
            step: 4,
            max_threshold: cfg.head_dim as u32,
            max_rounds: 48,
        },
        |thresholds| {
            let mut backend =
                LongSightBackend::new(hybrid_cfg.clone(), thresholds.clone(), rotations.clone());
            let r = perplexity::evaluate(&model, &text, &mut backend, (ctx / 16).max(2));
            ProbeResult {
                quality: r.perplexity,
                stats: backend.take_stats(),
            }
        },
    );
    println!(
        "tuned in {} probes: ppl {:.1} -> {:.1} ({:+.2}%), filter ratio {:.1}x",
        outcome.probes,
        outcome.baseline_quality,
        outcome.final_quality,
        100.0 * outcome.quality_increase(),
        outcome.final_stats.filter_ratio_nonwindow()
    );
    for ((l, h), th) in outcome.thresholds.iter() {
        println!("  layer {l} kv-head {h}: threshold {th}/{}", cfg.head_dim);
    }
    Ok(())
}

/// `longsight layout` — partition planning and capacity.
pub fn layout(a: &Args) -> Result<(), String> {
    a.ensure_known(&["model", "ctx"])?;
    let model = model_flag(a)?;
    let ctx: usize = a.get_or("ctx", 1 << 20)?;
    let geo = Geometry::drex();
    let plan = UserPartition::plan(&geo, model.kv_heads, model.layers, model.head_dim, ctx, 0);
    println!(
        "{} @ {ctx} tokens on DReX ({} GB):",
        model,
        geo.total_bytes() >> 30
    );
    println!(
        "  slices per head: {} (max {} keys each)",
        plan.slices[0].len(),
        layout::MAX_CONTEXT_SLICE_KEYS
    );
    println!("  packages touched: {}", plan.packages_touched());
    println!(
        "  footprint: {:.1} GiB/user (keys+values+signs, all layers)",
        plan.footprint_bytes() as f64 / (1u64 << 30) as f64
    );
    println!(
        "  max concurrent users: {}",
        layout::max_users(&geo, model.kv_heads, model.layers, model.head_dim, ctx)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn quality_runs_small() {
        quality(&args(&["--ctx", "256", "--window", "64", "--k", "32"])).unwrap();
    }

    #[test]
    fn serve_runs_every_system() {
        for sys in ["longsight", "gpu", "gpu2", "attacc", "window"] {
            serve(&args(&["--system", sys, "--ctx", "32768", "--users", "2"])).unwrap();
        }
    }

    #[test]
    fn offload_and_layout_run() {
        offload(&args(&["--ctx", "65536"])).unwrap();
        layout(&args(&["--model", "1b", "--ctx", "131072"])).unwrap();
    }

    #[test]
    fn loadtest_runs_briefly() {
        loadtest(&args(&["--model", "1b", "--rate", "2", "--duration", "2"])).unwrap();
    }

    #[test]
    fn profile_runs_and_trace_round_trips() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("longsight_cli_trace_{}.json", std::process::id()));
        let metrics = dir.join(format!("longsight_cli_metrics_{}.json", std::process::id()));
        let trace_s = trace.to_str().unwrap().to_string();
        let metrics_s = metrics.to_str().unwrap().to_string();
        profile(&args(&[
            "--model",
            "1b",
            "--duration",
            "2",
            "--ctx-min",
            "65536",
            "--ctx-max",
            "65536",
            "--trace-out",
            &trace_s,
            "--metrics-out",
            &metrics_s,
        ]))
        .unwrap();
        trace_validate(&args(&["--file", &trace_s])).unwrap();
        // The metrics dump is valid JSON with the serving counters.
        let m = std::fs::read_to_string(&metrics).unwrap();
        let doc = longsight_obs::json::parse(&m).unwrap();
        assert!(doc.get("counters").is_some());
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn trace_validate_rejects_bad_input() {
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("longsight_cli_bad_{}.json", std::process::id()));
        std::fs::write(&bad, "{\"traceEvents\":[]}").unwrap();
        assert!(trace_validate(&args(&["--file", bad.to_str().unwrap()])).is_err());
        std::fs::write(&bad, "not json").unwrap();
        assert!(trace_validate(&args(&["--file", bad.to_str().unwrap()])).is_err());
        assert!(trace_validate(&args(&["--file", "/nonexistent/x.json"])).is_err());
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(serve(&args(&["--system", "bogus"])).is_err());
        assert!(quality(&args(&["--nope", "1"])).is_err());
        assert!(model_flag(&args(&["--model", "70b"])).is_err());
        assert!(profile(&args(&["--host-kernels", "maybe"])).is_err());
    }

    #[test]
    fn profile_host_kernels_section_runs() {
        profile(&args(&[
            "--model",
            "1b",
            "--duration",
            "2",
            "--ctx-min",
            "65536",
            "--ctx-max",
            "65536",
            "--host-kernels",
            "on",
        ]))
        .unwrap();
    }

    #[test]
    fn bad_fault_flags_are_rejected() {
        assert!(serve(&args(&["--fault-profile", "bogus"])).is_err());
        assert!(serve(&args(&["--fault-profile", "1.5"])).is_err());
        assert!(serve(&args(&["--fault-profile", "mild", "--system", "gpu"])).is_err());
        assert!(serve(&args(&["--deadline-ms", "-3"])).is_err());
        assert!(offload(&args(&["--deadline-ms", "nan"])).is_err());
        assert!(loadtest(&args(&["--fault-seed", "abc"])).is_err());
    }

    #[test]
    fn scheduled_loadtest_runs_both_policies() {
        for policy in ["slo-aware", "fifo"] {
            loadtest(&args(&[
                "--model",
                "1b",
                "--rate",
                "4",
                "--duration",
                "2",
                "--sched",
                policy,
            ]))
            .unwrap();
        }
        loadtest(&args(&[
            "--model",
            "1b",
            "--rate",
            "4",
            "--duration",
            "2",
            "--sched",
            "slo-aware",
            "--mix",
            "0.6,0.2,0.2",
            "--watermark",
            "0.8",
            "--page-tokens",
            "2048",
            "--prefill-chunk",
            "4096",
        ]))
        .unwrap();
    }

    #[test]
    fn fleet_loadtest_runs_both_routers() {
        for router in ["jsq", "rr"] {
            loadtest(&args(&[
                "--model",
                "1b",
                "--rate",
                "6",
                "--duration",
                "2",
                "--ctx-min",
                "16384",
                "--ctx-max",
                "32768",
                "--sched",
                "slo-aware",
                "--watermark",
                "0.01",
                "--prefill-chunk",
                "128",
                "--replicas",
                "2",
                "--router",
                router,
            ]))
            .unwrap();
        }
        // A bare --replicas gets the representative SLO-aware defaults.
        loadtest(&args(&[
            "--model",
            "1b",
            "--rate",
            "4",
            "--duration",
            "2",
            "--replicas",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn bad_fleet_flags_are_rejected() {
        let zero = loadtest(&args(&["--replicas", "0"])).unwrap_err();
        assert!(zero.contains("--replicas must be >= 1"), "{zero}");
        assert!(loadtest(&args(&["--replicas", "65"])).is_err());
        assert!(loadtest(&args(&["--replicas", "2", "--router", "bogus"])).is_err());
        assert!(loadtest(&args(&["--replicas", "2", "--fault-profile", "mild"])).is_err());
    }

    #[test]
    fn crashy_fleet_loadtest_runs_and_audits() {
        // A guaranteed-crash profile: the run must still place, redispatch,
        // or shed every arrival (loadtest fails on any audit violation).
        for breaker in ["on", "off"] {
            loadtest(&args(&[
                "--model",
                "1b",
                "--rate",
                "4",
                "--duration",
                "3",
                "--ctx-min",
                "16384",
                "--ctx-max",
                "32768",
                "--replicas",
                "2",
                "--crash-profile",
                "1.0",
                "--crash-seed",
                "11",
                "--breaker",
                breaker,
                "--shed-cap",
                "8",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn bad_fleet_fault_flags_are_rejected() {
        // Fault domains need a fleet to fail over inside.
        let single = loadtest(&args(&["--crash-profile", "mild"])).unwrap_err();
        assert!(single.contains("--replicas >= 2"), "{single}");
        assert!(loadtest(&args(&["--breaker", "on"])).is_err());
        assert!(loadtest(&args(&["--shed-cap", "4"])).is_err());
        let bogus = loadtest(&args(&["--replicas", "2", "--crash-profile", "bogus"])).unwrap_err();
        assert!(bogus.contains("invalid crash profile"), "{bogus}");
        assert!(loadtest(&args(&["--replicas", "2", "--crash-profile", "1.5"])).is_err());
        assert!(loadtest(&args(&["--replicas", "2", "--breaker", "maybe"])).is_err());
        assert!(loadtest(&args(&["--replicas", "2", "--shed-cap", "0"])).is_err());
        assert!(loadtest(&args(&[
            "--replicas",
            "2",
            "--crash-profile",
            "mild",
            "--sched",
            "fifo",
        ]))
        .is_err());
    }

    #[test]
    fn session_loadtest_runs_with_affinity_and_audits() {
        // The loadtest command fails on any fleet-audit violation, so this
        // run also exercises the session pin/pull conservation checks.
        loadtest(&args(&[
            "--model",
            "1b",
            "--duration",
            "8",
            "--ctx-min",
            "16384",
            "--ctx-max",
            "32768",
            "--out-min",
            "16",
            "--out-max",
            "64",
            "--replicas",
            "2",
            "--router",
            "affinity",
            "--sessions",
            "4",
            "--turns",
            "3",
            "--think-time-ms",
            "1500",
            "--reuse",
            "0.9",
        ]))
        .unwrap();
    }

    #[test]
    fn bad_session_flags_are_rejected() {
        let turns = loadtest(&args(&["--sessions", "4", "--turns", "0"])).unwrap_err();
        assert!(turns.contains("--turns"), "{turns}");
        let think = loadtest(&args(&["--sessions", "4", "--think-time-ms", "-5"])).unwrap_err();
        assert!(think.contains("--think-time-ms"), "{think}");
        assert!(loadtest(&args(&["--sessions", "4", "--think-time-ms", "nan"])).is_err());
        assert!(loadtest(&args(&["--sessions", "4", "--reuse", "1.5"])).is_err());
        assert!(loadtest(&args(&["--sessions", "4", "--reuse", "-0.1"])).is_err());
        // Affinity routing is meaningless on a single replica.
        let aff = loadtest(&args(&["--router", "affinity"])).unwrap_err();
        assert!(aff.contains("--replicas >= 2"), "{aff}");
        // Session follow-up flags without --sessions are a contradiction.
        let orphan = loadtest(&args(&["--turns", "3"])).unwrap_err();
        assert!(orphan.contains("--sessions"), "{orphan}");
        assert!(loadtest(&args(&["--reuse", "0.5"])).is_err());
        assert!(loadtest(&args(&["--prefix-cache", "512"])).is_err());
        // The session driver runs the fleet fault-free.
        assert!(loadtest(&args(&[
            "--replicas",
            "2",
            "--sessions",
            "4",
            "--crash-profile",
            "mild",
        ]))
        .is_err());
    }

    #[test]
    fn serve_prints_paged_kv_panel() {
        serve(&args(&[
            "--model",
            "1b",
            "--ctx",
            "65536",
            "--users",
            "2",
            "--page-tokens",
            "1024",
        ]))
        .unwrap();
        serve(&args(&[
            "--system",
            "gpu",
            "--ctx",
            "32768",
            "--watermark",
            "0.5",
        ]))
        .unwrap();
    }

    #[test]
    fn bad_sched_flags_are_rejected() {
        assert!(loadtest(&args(&["--sched", "bogus"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--mix", "0.5"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--mix", "0,0,0"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--mix", "a,b,c"])).is_err());
        // Weights that parse but don't sum to 1 are a typo, not a request
        // for silent renormalization.
        let over = loadtest(&args(&["--sched", "slo-aware", "--mix", "0.5,0.4,0.2"])).unwrap_err();
        assert!(over.contains("must sum to 1"), "{over}");
        assert!(loadtest(&args(&["--sched", "slo-aware", "--mix", "0.2,0.2,0.2"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--watermark", "0"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--watermark", "1.5"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--page-tokens", "0"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--prefill-chunk", "0"])).is_err());
        assert!(loadtest(&args(&["--sched", "slo-aware", "--prefill-slots", "0"])).is_err());
        assert!(serve(&args(&["--page-tokens", "0"])).is_err());
        assert!(serve(&args(&["--watermark", "-0.1"])).is_err());
    }

    #[test]
    fn faulted_commands_run() {
        serve(&args(&[
            "--model",
            "1b",
            "--ctx",
            "32768",
            "--users",
            "2",
            "--fault-profile",
            "mild",
            "--fault-seed",
            "11",
        ]))
        .unwrap();
        offload(&args(&[
            "--ctx",
            "65536",
            "--fault-profile",
            "0.1",
            "--deadline-ms",
            "1.5",
        ]))
        .unwrap();
        loadtest(&args(&[
            "--model",
            "1b",
            "--rate",
            "2",
            "--duration",
            "2",
            "--fault-profile",
            "severe",
            "--fault-seed",
            "3",
        ]))
        .unwrap();
    }
}
