//! Deterministic parallel execution for the LongSight simulators.
//!
//! Every simulation crate in this workspace promises bit-reproducible
//! results under a seed. That promise traditionally forced the code to be
//! single-threaded: floating-point reductions are order-sensitive, so naive
//! work-stealing parallelism would change outputs from run to run.
//!
//! This crate provides the middle path: [`deterministic_map`] evaluates
//! independent work items on a scoped [`std::thread`] worker pool and
//! collects the results **in index order**. As long as each item's
//! computation is a pure function of that item (no cross-item accumulation
//! inside the closure), the returned vector is bit-identical to the serial
//! `items.iter().map(..)` — at any thread count, with any chunk schedule.
//! Callers that need a reduction fold the returned vector serially, which
//! fixes the floating-point reduction order once and for all.
//!
//! The thread count is resolved from, in priority order:
//!
//! 1. [`set_thread_count`] (the CLI's `--threads` flag),
//! 2. the `LONGSIGHT_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `LONGSIGHT_THREADS=1` (or `set_thread_count(1)`) disables the pool
//! entirely and runs the exact serial code path.
//!
//! # Example
//!
//! ```
//! let squares = longsight_exec::map_range(10, |i| (i * i) as u64);
//! assert_eq!(squares, (0..10).map(|i| (i * i) as u64).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global override for the worker-thread count (`0` = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while this thread is executing chunks for a parallel map. Nested
    /// maps run serially instead of spawning a second pool level — the outer
    /// map already owns every core, so extra threads would only add spawn
    /// overhead and oversubscription. (Serial nested execution is trivially
    /// bit-identical, so the determinism contract is unaffected.)
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a pool worker for the guard's lifetime;
/// restores the previous state on drop (including on unwind, so a panicking
/// caller does not stay pinned to serial execution).
struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let prev = IN_WORKER.replace(true);
        Self { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.set(self.prev);
    }
}

/// Work below this many items is never parallelized: thread spawn overhead
/// (~tens of microseconds) would dominate.
const MIN_PARALLEL_ITEMS: usize = 2;

/// Overrides the worker-thread count for the whole process.
///
/// Passing `0` clears the override, restoring `LONGSIGHT_THREADS` /
/// hardware-parallelism resolution. Intended for the CLI `--threads` flag
/// and for the parallel≡serial equivalence tests.
pub fn set_thread_count(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The worker-thread count parallel maps will use.
///
/// Resolution order: [`set_thread_count`] override, then the
/// `LONGSIGHT_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Invalid or zero environment
/// values fall through to hardware parallelism; the result is always ≥ 1.
pub fn thread_count() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("LONGSIGHT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `0..n` on the worker pool, returning results in index
/// order.
///
/// Semantically identical to `(0..n).map(f).collect()`, and bit-identical
/// to it whenever `f(i)` depends only on `i` (and on data it reads
/// immutably). Runs serially when the resolved thread count is 1 or `n` is
/// too small to amortize thread spawning.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (workers are joined by the
/// thread scope).
pub fn map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = thread_count().min(n);
    if threads <= 1 || n < MIN_PARALLEL_ITEMS || IN_WORKER.get() {
        return (0..n).map(f).collect();
    }

    // Chunked dynamic scheduling: more chunks than threads so uneven items
    // balance, few enough that coordination stays cheap. The chunk shape
    // never affects results — collection is by chunk index.
    let chunk = n.div_ceil(threads * 4).max(1);
    let chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks));

    let work = || {
        let _guard = WorkerGuard::enter();
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= chunks {
                break;
            }
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let out: Vec<R> = (start..end).map(&f).collect();
            done.lock().expect("result mutex poisoned").push((c, out));
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(work);
        }
        // The calling thread is the last worker: one fewer spawn, and no
        // core idles while the caller blocks on the scope join.
        work();
    });

    let mut parts = done.into_inner().expect("result mutex poisoned");
    parts.sort_unstable_by_key(|&(c, _)| c);
    parts.into_iter().flat_map(|(_, v)| v).collect()
}

/// Maps `f` over `items` in parallel, returning results in item order.
///
/// The closure receives `(index, &item)`. See [`map_range`] for the
/// determinism contract and scheduling behaviour.
pub fn deterministic_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_range(items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global override / env var.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with a temporary thread-count override, restoring the
    /// previous override afterwards (tests share the process-global).
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = THREAD_OVERRIDE.swap(n, Ordering::SeqCst);
        let out = f();
        THREAD_OVERRIDE.store(prev, Ordering::SeqCst);
        out
    }

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let got = with_threads(threads, || map_range(1000, |i| i * 3));
            let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise_for_floats() {
        let items: Vec<f64> = (0..513).map(|i| (i as f64).sin() * 1e3).collect();
        let serial = with_threads(1, || deterministic_map(&items, |_, x| x.sqrt().to_bits()));
        for threads in [2, 3, 4, 16] {
            let par = with_threads(threads, || {
                deterministic_map(&items, |_, x| x.sqrt().to_bits())
            });
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(map_range(0, |i| i).is_empty());
        assert_eq!(map_range(1, |i| i + 7), vec![7]);
        let empty: Vec<u32> = Vec::new();
        assert!(deterministic_map(&empty, |_, &x| x).is_empty());
    }

    #[test]
    fn closure_sees_matching_index_and_item() {
        let items: Vec<usize> = (100..200).collect();
        let got = with_threads(4, || deterministic_map(&items, |i, &x| (i, x)));
        for (i, &(gi, gx)) in got.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(gx, i + 100);
        }
    }

    #[test]
    fn nested_maps_match_serial_and_do_not_explode() {
        let want: Vec<Vec<usize>> = (0..32).map(|i| (0..50).map(|j| i * j).collect()).collect();
        let got = with_threads(4, || map_range(32, |i| map_range(50, |j| i * j)));
        assert_eq!(got, want);
        // After the outer map returns, the calling thread is no longer a
        // worker: a fresh top-level map may parallelize again.
        let flat = with_threads(4, || map_range(100, |i| i + 1));
        assert_eq!(flat, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn override_takes_priority() {
        with_threads(3, || assert_eq!(thread_count(), 3));
        with_threads(0, || assert!(thread_count() >= 1));
    }

    #[test]
    fn env_variable_is_honored_without_override() {
        with_threads(0, || {
            std::env::set_var("LONGSIGHT_THREADS", "5");
            assert_eq!(thread_count(), 5);
            std::env::set_var("LONGSIGHT_THREADS", "not-a-number");
            assert!(thread_count() >= 1);
            std::env::remove_var("LONGSIGHT_THREADS");
        });
    }

    #[test]
    fn worker_panics_propagate() {
        let result = with_threads(4, || {
            std::panic::catch_unwind(|| {
                map_range(100, |i| {
                    assert!(i != 57, "intentional failure");
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
