//! Deterministic fault injection for the LongSight simulators.
//!
//! A production-scale serving deployment must survive CXL link replays,
//! straggling NMAs, and filter bit-errors without violating its SLOs. This
//! crate provides the fault *schedule* those scenarios need, with two hard
//! guarantees:
//!
//! 1. **Seed determinism at any thread count.** Every fault decision is a
//!    pure function of `(fault_seed, event stream key, draw index)` — there
//!    is no shared RNG whose draw order could depend on scheduling. A given
//!    `--fault-seed` therefore reproduces the exact same fault timeline
//!    whether the simulator runs on 1 thread or 64, composing with the
//!    `longsight-exec` bit-identity contract.
//! 2. **Monotonicity in the fault rate.** An event fires iff its fixed
//!    per-event uniform draw falls below the configured rate, so raising a
//!    rate can only turn non-events into events (a superset). Downstream,
//!    higher fault rates can never *reduce* latency or *raise* SLO capacity.
//!
//! The crate is dependency-free apart from the in-repo `tensor::rng`
//! xoshiro generator, and carries the shared fault vocabulary:
//! [`FaultProfile`] (rates), [`RetryPolicy`] (deadline/backoff),
//! [`FaultInjector`] (sampling), [`FaultEvent`]/[`FaultLog`] (the replayable
//! timeline), and [`FaultError`] (the typed error model that replaces
//! panic-on-bad-input in the offload and serving hot paths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use longsight_obs::{ArgVal, Recorder, TrackId};
use longsight_tensor::SimRng;

/// Event-stream domains, kept distinct so the same `(a, b, c)` coordinates
/// in different subsystems never collide on one draw.
pub mod domain {
    /// CXL bulk transfers (CRC replay events).
    pub const LINK: u64 = 1;
    /// Per-slice NMA execution (straggler multipliers).
    pub const SLICE: u64 = 2;
    /// Per-slice PFU filtering (bitmap bit-flips).
    pub const PFU: u64 = 3;
    /// Per-slice hard timeouts.
    pub const TIMEOUT: u64 = 4;
    /// Per-token offload attempts in the serving loop.
    pub const TOKEN: u64 = 5;
    /// Unrecoverable per-request failures.
    pub const HARD: u64 = 6;
    /// Speculative lookahead offload slots (miss draws and in-flight fault
    /// voids); kept separate from [`TOKEN`] so speculation never perturbs
    /// the retry ladder's draw sequence.
    pub const SPEC: u64 = 7;
    /// Replica-level crash/recovery hazards in the fleet simulator. Keyed
    /// `(REPLICA, replica_index, hazard_interval, 0)`; draw 0 is the crash
    /// Bernoulli, draw 1 the within-interval jitter.
    pub const REPLICA: u64 = 8;
    /// Sustained DReX-tier brownouts (degraded offload budget) per replica.
    /// Keyed `(BROWNOUT, replica_index, hazard_interval, 0)`; draw 0 is the
    /// brownout Bernoulli, draw 1 the within-interval jitter.
    pub const BROWNOUT: u64 = 9;
}

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a stream key from a domain and up to three coordinates
/// (user/head/slice, request/token, …). Pure and collision-resistant enough
/// for scheduling purposes.
pub fn stream(domain: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut h = mix64(domain.wrapping_mul(0xA076_1D64_78BD_642F));
    h = mix64(h ^ a.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    h = mix64(h ^ b.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    mix64(h ^ c.wrapping_mul(0x5895_65E0_6C3D_3D1D))
}

/// The `draw`-th uniform in `[0, 1)` of `stream` under `seed` — the same
/// pure function [`FaultInjector::uniform`] uses, exposed standalone so
/// subsystems that only need deterministic Bernoulli draws (e.g. the
/// lookahead speculation model) can share the machinery without carrying a
/// fault profile.
pub fn unit_draw(seed: u64, stream: u64, draw: u64) -> f64 {
    let mut rng = SimRng::seed_from(mix64(seed ^ stream).wrapping_add(draw));
    rng.uniform()
}

/// Per-event-class fault rates. All rates are probabilities in `[0, 1]`;
/// a fully-zero profile (`disabled`) injects nothing and leaves every
/// simulation bit-identical to the fault-free build.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability that a CXL bulk transfer suffers a CRC replay round.
    pub link_replay_rate: f64,
    /// Maximum replay rounds per transfer (each round retransmits one
    /// link-layer flit window and re-arbitrates the link).
    pub link_max_replays: u32,
    /// Probability that one slice's NMA straggles (thermal throttling,
    /// refresh collision, bank conflict storm).
    pub straggler_rate: f64,
    /// Execution-time multiplier applied to a straggling slice.
    pub straggler_multiplier: f64,
    /// Probability that one slice's PFU bitmap is corrupted by a bit-error.
    pub bitflip_rate: f64,
    /// Fraction of that slice's filter decisions flipped when corrupted
    /// (survivors dropped become false negatives; non-survivors added
    /// become false positives).
    pub bitflip_flip_fraction: f64,
    /// Probability that a token's offload attempt hits a hard slice timeout
    /// (NMA hang / lost completion) and must be retried.
    pub timeout_rate: f64,
    /// Probability that a request dies unrecoverably (host evicted, link
    /// down beyond replay budget). Sampled once per token.
    pub hard_fail_rate: f64,
}

impl FaultProfile {
    /// No faults: every simulation is bit-identical to the fault-free path.
    pub fn disabled() -> Self {
        Self {
            link_replay_rate: 0.0,
            link_max_replays: 0,
            straggler_rate: 0.0,
            straggler_multiplier: 1.0,
            bitflip_rate: 0.0,
            bitflip_flip_fraction: 0.0,
            timeout_rate: 0.0,
            hard_fail_rate: 0.0,
        }
    }

    /// A lightly degraded link/device: occasional replays and stragglers,
    /// rare timeouts. Roughly "a healthy fleet's tail".
    pub fn mild() -> Self {
        Self::scaled(0.01)
    }

    /// A badly degraded deployment: frequent replays, stragglers and
    /// timeouts. Roughly "one failing device in the pool".
    pub fn severe() -> Self {
        Self::scaled(0.10)
    }

    /// A profile where every event class fires with probability derived
    /// from one scalar `rate` (the availability sweep's x-axis).
    ///
    /// Replays and stragglers fire at `rate`, PFU bit-flips at `rate / 2`,
    /// slice timeouts at `rate / 2`, and unrecoverable failures at
    /// `rate / 50`. All derived rates are monotone in `rate`.
    pub fn scaled(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            link_replay_rate: rate,
            link_max_replays: 3,
            straggler_rate: rate,
            straggler_multiplier: 4.0,
            bitflip_rate: rate / 2.0,
            bitflip_flip_fraction: 0.01,
            timeout_rate: rate / 2.0,
            hard_fail_rate: rate / 50.0,
        }
    }

    /// Parses a CLI profile name: `none`, `mild`, `severe`, or a bare
    /// fault-rate float such as `0.05`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "none" | "off" | "disabled" => Ok(Self::disabled()),
            "mild" => Ok(Self::mild()),
            "severe" => Ok(Self::severe()),
            other => match other.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => Ok(Self::scaled(r)),
                _ => Err(format!(
                    "invalid fault profile '{other}' (use none, mild, severe, or a rate in [0, 1])"
                )),
            },
        }
    }

    /// Whether any event class can fire at all.
    pub fn is_enabled(&self) -> bool {
        self.link_replay_rate > 0.0
            || self.straggler_rate > 0.0
            || self.bitflip_rate > 0.0
            || self.timeout_rate > 0.0
            || self.hard_fail_rate > 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Retry/deadline policy of the serving degradation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Per-request offload deadline: the GPU abandons an attempt that has
    /// not completed by this point, ns.
    pub offload_deadline_ns: f64,
    /// Bounded retries after the first attempt.
    pub max_retries: u32,
    /// First backoff before re-submitting, ns.
    pub backoff_base_ns: f64,
    /// Exponential backoff growth per retry.
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff, ns: the exponential schedule
    /// saturates here instead of growing without bound.
    pub backoff_cap_ns: f64,
}

impl RetryPolicy {
    /// Serving defaults: a 2 ms offload deadline (well above any healthy
    /// single-layer offload), 2 retries, 50 µs base backoff doubling per
    /// retry, saturating at a 1 ms cap (far above the default schedule, so
    /// the cap only binds under reconfigured deep-retry policies).
    pub fn serving_default() -> Self {
        Self {
            offload_deadline_ns: 2.0e6,
            max_retries: 2,
            backoff_base_ns: 50_000.0,
            backoff_multiplier: 2.0,
            backoff_cap_ns: 1.0e6,
        }
    }

    /// Backoff before retry `attempt` (1-based: the wait preceding the
    /// attempt with that index), saturated at [`RetryPolicy::backoff_cap_ns`].
    pub fn backoff_ns(&self, attempt: u32) -> f64 {
        let raw = self.backoff_base_ns
            * self
                .backoff_multiplier
                .powi(attempt.saturating_sub(1) as i32);
        raw.min(self.backoff_cap_ns)
    }

    /// Worst-case time a fully-degraded token spends before falling back to
    /// dense window-only attention: every attempt runs to the deadline, with
    /// backoffs in between.
    pub fn degraded_elapsed_ns(&self) -> f64 {
        let attempts = (self.max_retries + 1) as f64;
        let backoffs: f64 = (1..=self.max_retries).map(|a| self.backoff_ns(a)).sum();
        attempts * self.offload_deadline_ns + backoffs
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::serving_default()
    }
}

/// Typed errors raised by fault-injected offload paths (replacing the
/// former panic-on-bad-input style in the hot paths).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A slice exceeded its hard execution timeout.
    SliceTimeout {
        /// Time the slice had accrued when it was killed, ns.
        elapsed_ns: f64,
        /// The configured timeout, ns.
        timeout_ns: f64,
    },
    /// A request's offload attempt missed the per-request deadline.
    DeadlineExceeded {
        /// Time the attempt had accrued, ns.
        elapsed_ns: f64,
        /// The configured deadline, ns.
        deadline_ns: f64,
    },
    /// Bounded retries were exhausted; the caller must degrade.
    RetriesExhausted {
        /// Attempts made (initial + retries).
        attempts: u32,
    },
    /// The DCC request queue would overflow.
    QueueOverflow {
        /// Hardware queue depth.
        depth: usize,
    },
    /// A workload specification is inconsistent (formerly a panic).
    InvalidSpec(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::SliceTimeout {
                elapsed_ns,
                timeout_ns,
            } => write!(f, "slice timeout: {elapsed_ns:.0} ns > {timeout_ns:.0} ns"),
            FaultError::DeadlineExceeded {
                elapsed_ns,
                deadline_ns,
            } => write!(
                f,
                "offload deadline exceeded: {elapsed_ns:.0} ns > {deadline_ns:.0} ns"
            ),
            FaultError::RetriesExhausted { attempts } => {
                write!(f, "retries exhausted after {attempts} attempts")
            }
            FaultError::QueueOverflow { depth } => {
                write!(f, "DCC request queue overflow (depth {depth})")
            }
            FaultError::InvalidSpec(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// One injected fault occurrence, keyed by its stream so logs are
/// replayable and comparable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The stream key the event was sampled on.
    pub stream: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// Fault event taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A CXL transfer needed `replays` CRC replay rounds.
    LinkReplay {
        /// Replay rounds.
        replays: u32,
    },
    /// A slice ran `multiplier`× slower than nominal.
    Straggler {
        /// Slowdown factor.
        multiplier: f64,
    },
    /// A PFU bitmap was corrupted, flipping filter decisions.
    Bitflip {
        /// True survivors dropped (hurt recall).
        false_negatives: usize,
        /// Spurious survivors added (cost fetch/score time).
        false_positives: usize,
    },
    /// An offload attempt hit a hard timeout.
    Timeout {
        /// Attempt index (0 = first try).
        attempt: u32,
    },
    /// A retry was scheduled after `backoff_ns` of backoff.
    Retry {
        /// Retry index (1-based).
        attempt: u32,
        /// Backoff preceding the retry, ns.
        backoff_ns: f64,
    },
    /// All attempts failed; the token fell back to dense window-only
    /// attention.
    Degraded,
    /// The request died unrecoverably.
    HardFail,
}

impl FaultEvent {
    /// The instant-event name under which this fault appears in a trace.
    /// All names share the `fault.` prefix so exporters and tests can count
    /// fault events with one predicate.
    pub fn trace_name(&self) -> &'static str {
        match self.kind {
            FaultKind::LinkReplay { .. } => "fault.link_replay",
            FaultKind::Straggler { .. } => "fault.straggler",
            FaultKind::Bitflip { .. } => "fault.bitflip",
            FaultKind::Timeout { .. } => "fault.timeout",
            FaultKind::Retry { .. } => "fault.retry",
            FaultKind::Degraded => "fault.degraded",
            FaultKind::HardFail => "fault.hard_fail",
        }
    }

    /// Records this event as one instant at simulated time `ts_ns`.
    pub fn record_into(&self, rec: &mut Recorder, track: TrackId, ts_ns: f64) {
        if !rec.is_enabled() {
            return;
        }
        let stream = ("stream", ArgVal::U(self.stream));
        match &self.kind {
            FaultKind::LinkReplay { replays } => rec.instant_with(
                track,
                self.trace_name(),
                ts_ns,
                &[stream, ("replays", ArgVal::U(u64::from(*replays)))],
            ),
            FaultKind::Straggler { multiplier } => rec.instant_with(
                track,
                self.trace_name(),
                ts_ns,
                &[stream, ("multiplier", ArgVal::F(*multiplier))],
            ),
            FaultKind::Bitflip {
                false_negatives,
                false_positives,
            } => rec.instant_with(
                track,
                self.trace_name(),
                ts_ns,
                &[
                    stream,
                    ("false_negatives", ArgVal::U(*false_negatives as u64)),
                    ("false_positives", ArgVal::U(*false_positives as u64)),
                ],
            ),
            FaultKind::Timeout { attempt } => rec.instant_with(
                track,
                self.trace_name(),
                ts_ns,
                &[stream, ("attempt", ArgVal::U(u64::from(*attempt)))],
            ),
            FaultKind::Retry {
                attempt,
                backoff_ns,
            } => rec.instant_with(
                track,
                self.trace_name(),
                ts_ns,
                &[
                    stream,
                    ("attempt", ArgVal::U(u64::from(*attempt))),
                    ("backoff_ns", ArgVal::F(*backoff_ns)),
                ],
            ),
            FaultKind::Degraded | FaultKind::HardFail => {
                rec.instant_with(track, self.trace_name(), ts_ns, &[stream])
            }
        }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FaultKind::LinkReplay { replays } => {
                write!(f, "{:016x} link-replay x{replays}", self.stream)
            }
            FaultKind::Straggler { multiplier } => {
                write!(f, "{:016x} straggler x{multiplier:.2}", self.stream)
            }
            FaultKind::Bitflip {
                false_negatives,
                false_positives,
            } => write!(
                f,
                "{:016x} bitflip fn={false_negatives} fp={false_positives}",
                self.stream
            ),
            FaultKind::Timeout { attempt } => {
                write!(f, "{:016x} timeout attempt={attempt}", self.stream)
            }
            FaultKind::Retry {
                attempt,
                backoff_ns,
            } => write!(
                f,
                "{:016x} retry attempt={attempt} backoff={backoff_ns:.0}ns",
                self.stream
            ),
            FaultKind::Degraded => write!(f, "{:016x} degraded", self.stream),
            FaultKind::HardFail => write!(f, "{:016x} hard-fail", self.stream),
        }
    }
}

/// An append-only, deterministic fault timeline.
///
/// Callers append events in their (serial, deterministic) control-flow
/// order; [`FaultLog::to_text`] renders one line per event in a stable
/// format, so two runs can be compared byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, stream: u64, kind: FaultKind) {
        self.events.push(FaultEvent { stream, kind });
    }

    /// Appends every event of `other` (merging per-item logs in index
    /// order keeps the combined log deterministic).
    pub fn extend(&mut self, other: FaultLog) {
        self.events.extend(other.events);
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events matching a predicate on the kind.
    pub fn count_matching(&self, pred: impl Fn(&FaultKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Records events `start_idx..` as trace instants at simulated time
    /// `ts_ns`, one per log entry (the parity tests count on exactly this
    /// 1:1 mapping). Returns the number of events recorded, so streaming
    /// callers can advance their cursor: record the tail after each
    /// simulation step at that step's simulated time.
    pub fn record_tail_into(
        &self,
        start_idx: usize,
        rec: &mut Recorder,
        track: TrackId,
        ts_ns: f64,
    ) -> usize {
        if !rec.is_enabled() || start_idx >= self.events.len() {
            return 0;
        }
        let tail = &self.events[start_idx..];
        for e in tail {
            e.record_into(rec, track, ts_ns);
        }
        tail.len()
    }

    /// Stable one-line-per-event rendering for byte-identity comparisons.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 40);
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// The deterministic fault sampler.
///
/// All methods are `&self` and pure: the decision for a stream key is
/// independent of call order, thread count, and every other stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    /// The rates.
    pub profile: FaultProfile,
    /// The schedule seed (CLI `--fault-seed`).
    pub seed: u64,
}

impl FaultInjector {
    /// Creates an injector.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// An injector that never fires (the fault-free fast path).
    pub fn disabled() -> Self {
        Self::new(FaultProfile::disabled(), 0)
    }

    /// Whether any event class can fire.
    pub fn is_enabled(&self) -> bool {
        self.profile.is_enabled()
    }

    /// The `draw`-th uniform in `[0, 1)` of `stream` — a pure function of
    /// `(seed, stream, draw)`. Comparing these fixed draws against rates is
    /// what makes fault schedules monotone in the rate.
    pub fn uniform(&self, stream: u64, draw: u64) -> f64 {
        unit_draw(self.seed, stream, draw)
    }

    /// CRC replay rounds for a CXL transfer on `stream` (0 = clean).
    /// Each round fires iff its own fixed draw falls below the rate, so the
    /// count is monotone in `link_replay_rate`.
    pub fn link_replays(&self, stream: u64) -> u32 {
        let p = self.profile.link_replay_rate;
        if p <= 0.0 {
            return 0;
        }
        let mut replays = 0;
        while replays < self.profile.link_max_replays {
            if self.uniform(stream, replays as u64) < p {
                replays += 1;
            } else {
                break;
            }
        }
        replays
    }

    /// Straggler multiplier for a slice on `stream` (1.0 = nominal).
    pub fn straggler_multiplier(&self, stream: u64) -> f64 {
        if self.profile.straggler_rate > 0.0
            && self.uniform(stream, 0) < self.profile.straggler_rate
        {
            self.profile.straggler_multiplier.max(1.0)
        } else {
            1.0
        }
    }

    /// PFU bitmap corruption for a slice on `stream`: given the slice's
    /// survivor count and total keys, returns `(false_negatives,
    /// false_positives)` — zero when the slice is clean.
    pub fn bitflips(&self, stream: u64, survivors: usize, keys: usize) -> (usize, usize) {
        if self.profile.bitflip_rate <= 0.0 || self.uniform(stream, 0) >= self.profile.bitflip_rate
        {
            return (0, 0);
        }
        let frac = self.profile.bitflip_flip_fraction.clamp(0.0, 1.0);
        let false_neg = ((survivors as f64) * frac).round() as usize;
        let false_pos = ((keys.saturating_sub(survivors) as f64) * frac).round() as usize;
        (false_neg.min(survivors), false_pos)
    }

    /// Whether the offload attempt `attempt` of the token on `stream` hits
    /// a hard timeout.
    pub fn attempt_times_out(&self, stream: u64, attempt: u32) -> bool {
        self.profile.timeout_rate > 0.0
            && self.uniform(stream, 1 + attempt as u64) < self.profile.timeout_rate
    }

    /// Whether the request on `stream` dies unrecoverably.
    pub fn hard_fails(&self, stream: u64) -> bool {
        self.profile.hard_fail_rate > 0.0 && self.uniform(stream, 0) < self.profile.hard_fail_rate
    }
}

/// Replica-level fault rates for the fleet simulator: whole-node crashes
/// (KV pages lost, in-flight work redispatched) and sustained DReX-tier
/// brownouts (offload budget shrunk, tokens counted as degraded).
///
/// Time is sliced into fixed hazard intervals; each up-interval draws one
/// crash Bernoulli and one brownout Bernoulli per replica on the
/// [`domain::REPLICA`] / [`domain::BROWNOUT`] streams. The raw per-interval
/// hazard is monotone in the rate, same as [`FaultProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaFaultProfile {
    /// Probability that a replica crashes in one hazard interval.
    pub crash_rate: f64,
    /// Hazard interval length, seconds of simulated time.
    pub interval_s: f64,
    /// Downtime per crash before the replica rejoins, seconds.
    pub repair_s: f64,
    /// Probability that a replica's DReX tier browns out in one interval.
    pub brownout_rate: f64,
    /// Brownout duration, seconds.
    pub brownout_s: f64,
    /// Fraction of the offload top-k budget retained during a brownout,
    /// in `(0, 1]`; tokens decoded under it are counted as degraded.
    pub brownout_topk_factor: f64,
}

impl ReplicaFaultProfile {
    /// No replica faults: the fleet simulation is bit-identical to the
    /// crash-free build.
    pub fn disabled() -> Self {
        Self {
            crash_rate: 0.0,
            interval_s: 1.0,
            repair_s: 1.0,
            brownout_rate: 0.0,
            brownout_s: 1.0,
            brownout_topk_factor: 1.0,
        }
    }

    /// A profile where crashes fire per interval at `rate` and brownouts at
    /// `rate / 2`, with a 1 s hazard interval, 1 s repair time, 1 s
    /// brownouts, and half the offload budget retained while browned out.
    /// All derived rates are monotone in `rate`.
    pub fn scaled(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self {
            crash_rate: rate,
            interval_s: 1.0,
            // A node restart is slow next to a serving SLO: three seconds
            // down per crash, so anything wedged on a dead replica blows
            // an interactive deadline rather than riding out a blip.
            repair_s: 3.0,
            brownout_rate: rate / 2.0,
            brownout_s: 1.0,
            brownout_topk_factor: 0.5,
        }
    }

    /// "A healthy fleet's tail": rare crashes.
    pub fn mild() -> Self {
        Self::scaled(0.05)
    }

    /// "One flapping rack": frequent crashes and brownouts.
    pub fn severe() -> Self {
        Self::scaled(0.25)
    }

    /// Parses a CLI profile name: `none`, `mild`, `severe`, or a bare
    /// per-interval crash-rate float such as `0.1`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted forms.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "none" | "off" | "disabled" => Ok(Self::disabled()),
            "mild" => Ok(Self::mild()),
            "severe" => Ok(Self::severe()),
            other => match other.parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => Ok(Self::scaled(r)),
                _ => Err(format!(
                    "invalid crash profile '{other}' (use none, mild, severe, or a rate in [0, 1])"
                )),
            },
        }
    }

    /// Whether any replica-level event can fire at all.
    pub fn is_enabled(&self) -> bool {
        self.crash_rate > 0.0 || self.brownout_rate > 0.0
    }
}

impl Default for ReplicaFaultProfile {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What happened to a replica at one point of its fault timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaEventKind {
    /// The replica crashed: its KV pages are gone and its in-flight
    /// requests must be redispatched.
    Down,
    /// The replica finished repair and rejoined the fleet (cold: empty KV).
    Up,
    /// The replica's DReX tier entered a brownout (shrunk offload budget).
    BrownoutStart,
    /// The brownout ended; the offload budget is back to nominal.
    BrownoutEnd,
}

impl ReplicaEventKind {
    /// The instant-event name under which this event appears in a trace.
    pub fn trace_name(self) -> &'static str {
        match self {
            ReplicaEventKind::Down => "replica.down",
            ReplicaEventKind::Up => "replica.up",
            ReplicaEventKind::BrownoutStart => "replica.brownout_start",
            ReplicaEventKind::BrownoutEnd => "replica.brownout_end",
        }
    }

    /// Short display name for timeline text.
    fn name(self) -> &'static str {
        match self {
            ReplicaEventKind::Down => "down",
            ReplicaEventKind::Up => "up",
            ReplicaEventKind::BrownoutStart => "brownout-start",
            ReplicaEventKind::BrownoutEnd => "brownout-end",
        }
    }
}

/// One replica-level fault event at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaEvent {
    /// Simulated time of the event, ns.
    pub at_ns: f64,
    /// Replica index within the fleet.
    pub replica: usize,
    /// What happened.
    pub kind: ReplicaEventKind,
}

/// The deterministic crash/brownout timeline of one replica over
/// `duration_s` seconds — a pure function of `(seed, replica, profile)`.
///
/// Crashes: each hazard interval the replica is up, it crashes iff the
/// fixed draw `unit_draw(seed, stream(REPLICA, replica, interval, 0), 0)`
/// falls below `crash_rate`; the crash lands at a jittered point inside the
/// interval (draw 1) and the replica stays down for `repair_s`. Intervals
/// that start while the replica is down draw nothing — a dead node has no
/// hazard. Brownouts fire the same way on [`domain::BROWNOUT`]; a brownout
/// whose start falls inside a down window is suppressed (the whole node is
/// already gone) and one that overlaps a later crash is truncated at it.
///
/// Events are returned sorted by time; Down/Up pairs never overlap.
pub fn replica_schedule(
    profile: &ReplicaFaultProfile,
    seed: u64,
    replica: usize,
    duration_s: f64,
) -> Vec<ReplicaEvent> {
    let mut events = Vec::new();
    if !profile.is_enabled() || duration_s <= 0.0 || profile.interval_s <= 0.0 {
        return events;
    }
    let interval = profile.interval_s;
    let intervals = (duration_s / interval).ceil() as u64;
    // Pass 1: crash windows (sorted by construction).
    let mut downs: Vec<(f64, f64)> = Vec::new();
    let mut down_until = f64::NEG_INFINITY;
    for i in 0..intervals {
        let t0 = i as f64 * interval;
        if t0 < down_until {
            continue;
        }
        if profile.crash_rate > 0.0 {
            let key = stream(domain::REPLICA, replica as u64, i, 0);
            if unit_draw(seed, key, 0) < profile.crash_rate {
                let at = t0 + unit_draw(seed, key, 1) * interval;
                if at < duration_s && at >= down_until {
                    let up = at + profile.repair_s.max(0.0);
                    downs.push((at, up));
                    down_until = up;
                }
            }
        }
    }
    // Pass 2: brownouts, clipped against the crash windows.
    let mut brownouts: Vec<(f64, f64)> = Vec::new();
    if profile.brownout_rate > 0.0 && profile.brownout_s > 0.0 {
        let mut browned_until = f64::NEG_INFINITY;
        for i in 0..intervals {
            let t0 = i as f64 * interval;
            if t0 < browned_until {
                continue;
            }
            let key = stream(domain::BROWNOUT, replica as u64, i, 0);
            if unit_draw(seed, key, 0) >= profile.brownout_rate {
                continue;
            }
            let at = t0 + unit_draw(seed, key, 1) * interval;
            if at >= duration_s || at < browned_until {
                continue;
            }
            // Suppress a brownout that begins on a dead node; truncate one
            // that runs into a later crash.
            if downs.iter().any(|&(d, u)| at >= d && at < u) {
                continue;
            }
            let mut end = at + profile.brownout_s;
            for &(d, _) in &downs {
                if d > at && d < end {
                    end = d;
                }
            }
            brownouts.push((at, end));
            browned_until = end;
        }
    }
    for (d, u) in downs {
        events.push(ReplicaEvent {
            at_ns: d * 1e9,
            replica,
            kind: ReplicaEventKind::Down,
        });
        events.push(ReplicaEvent {
            at_ns: u * 1e9,
            replica,
            kind: ReplicaEventKind::Up,
        });
    }
    for (s, e) in brownouts {
        events.push(ReplicaEvent {
            at_ns: s * 1e9,
            replica,
            kind: ReplicaEventKind::BrownoutStart,
        });
        events.push(ReplicaEvent {
            at_ns: e * 1e9,
            replica,
            kind: ReplicaEventKind::BrownoutEnd,
        });
    }
    events.sort_by(|a, b| {
        a.at_ns
            .total_cmp(&b.at_ns)
            .then_with(|| (a.kind as u8).cmp(&(b.kind as u8)))
    });
    events
}

/// The full fleet timeline: every replica's schedule merged in time order
/// (ties broken by replica index, then event kind), ready to drain at
/// simulation boundaries.
pub fn fleet_schedule(
    profile: &ReplicaFaultProfile,
    seed: u64,
    replicas: usize,
    duration_s: f64,
) -> Vec<ReplicaEvent> {
    let mut all = Vec::new();
    for r in 0..replicas {
        all.extend(replica_schedule(profile, seed, r, duration_s));
    }
    all.sort_by(|a, b| {
        a.at_ns
            .total_cmp(&b.at_ns)
            .then_with(|| a.replica.cmp(&b.replica))
            .then_with(|| (a.kind as u8).cmp(&(b.kind as u8)))
    });
    all
}

/// Stable one-line-per-event rendering of a replica timeline for
/// byte-identity comparisons across thread counts and reruns.
pub fn timeline_text(events: &[ReplicaEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 32);
    for e in events {
        out.push_str(&format!(
            "{:>14.0} r{} {}\n",
            e.at_ns,
            e.replica,
            e.kind.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_enabled());
        for s in 0..1000u64 {
            assert_eq!(inj.link_replays(s), 0);
            assert_eq!(inj.straggler_multiplier(s), 1.0);
            assert_eq!(inj.bitflips(s, 100, 1000), (0, 0));
            assert!(!inj.attempt_times_out(s, 0));
            assert!(!inj.hard_fails(s));
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_stream() {
        let a = FaultInjector::new(FaultProfile::severe(), 7);
        let b = FaultInjector::new(FaultProfile::severe(), 7);
        // Query b in a different order than a; decisions must not change.
        let fwd: Vec<u32> = (0..500).map(|s| a.link_replays(s)).collect();
        let bwd: Vec<u32> = (0..500).rev().map(|s| b.link_replays(s)).collect();
        assert_eq!(fwd, bwd.into_iter().rev().collect::<Vec<_>>());
        // Different seeds diverge.
        let c = FaultInjector::new(FaultProfile::severe(), 8);
        let other: Vec<u32> = (0..500).map(|s| c.link_replays(s)).collect();
        assert_ne!(fwd, other);
    }

    #[test]
    fn event_sets_are_monotone_in_rate() {
        let seed = 11;
        let lo = FaultInjector::new(FaultProfile::scaled(0.02), seed);
        let hi = FaultInjector::new(FaultProfile::scaled(0.20), seed);
        for s in 0..2000u64 {
            assert!(hi.link_replays(s) >= lo.link_replays(s), "stream {s}");
            assert!(
                hi.straggler_multiplier(s) >= lo.straggler_multiplier(s),
                "stream {s}"
            );
            // lo firing implies hi fires (event sets nest upward in rate).
            assert!(
                hi.attempt_times_out(s, 0) || !lo.attempt_times_out(s, 0),
                "stream {s}: higher rate lost a timeout"
            );
            assert!(hi.hard_fails(s) || !lo.hard_fails(s), "stream {s}");
        }
    }

    #[test]
    fn rates_are_approximately_honored() {
        let inj = FaultInjector::new(FaultProfile::scaled(0.10), 3);
        let n = 20_000u64;
        let stragglers = (0..n)
            .filter(|&s| inj.straggler_multiplier(s) > 1.0)
            .count();
        let frac = stragglers as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.01, "straggler rate {frac}");
        let replays: u32 = (0..n).map(|s| inj.link_replays(s)).sum();
        // Expected ≈ p + p² + p³ per stream.
        let per = replays as f64 / n as f64;
        assert!((per - 0.111).abs() < 0.01, "replay count {per}");
    }

    #[test]
    fn bitflips_scale_with_population() {
        let inj = FaultInjector::new(
            FaultProfile {
                bitflip_rate: 1.0,
                bitflip_flip_fraction: 0.01,
                ..FaultProfile::disabled()
            },
            5,
        );
        let (fneg, fpos) = inj.bitflips(0, 1000, 65_536);
        assert_eq!(fneg, 10);
        assert_eq!(fpos, 645);
        // No survivors → nothing to drop.
        assert_eq!(inj.bitflips(0, 0, 65_536).0, 0);
    }

    #[test]
    fn profile_parsing_accepts_names_and_rates() {
        assert_eq!(
            FaultProfile::parse("none").unwrap(),
            FaultProfile::disabled()
        );
        assert_eq!(FaultProfile::parse("mild").unwrap(), FaultProfile::mild());
        assert_eq!(
            FaultProfile::parse("severe").unwrap(),
            FaultProfile::severe()
        );
        assert_eq!(
            FaultProfile::parse("0.05").unwrap(),
            FaultProfile::scaled(0.05)
        );
        assert!(FaultProfile::parse("2.0").is_err());
        assert!(FaultProfile::parse("bogus").is_err());
    }

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let p = RetryPolicy::serving_default();
        assert_eq!(p.backoff_ns(1), 50_000.0);
        assert_eq!(p.backoff_ns(2), 100_000.0);
        let degraded = p.degraded_elapsed_ns();
        assert_eq!(degraded, 3.0 * 2.0e6 + 50_000.0 + 100_000.0);
    }

    #[test]
    fn log_text_is_stable_and_countable() {
        let mut log = FaultLog::new();
        log.push(1, FaultKind::LinkReplay { replays: 2 });
        log.push(
            2,
            FaultKind::Bitflip {
                false_negatives: 3,
                false_positives: 7,
            },
        );
        log.push(3, FaultKind::Degraded);
        let text = log.to_text();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("link-replay x2"));
        assert!(text.contains("bitflip fn=3 fp=7"));
        assert!(text.contains("degraded"));
        assert_eq!(log.count_matching(|k| matches!(k, FaultKind::Degraded)), 1);
        let mut merged = FaultLog::new();
        merged.extend(log.clone());
        assert_eq!(merged, log);
    }

    #[test]
    fn fault_errors_render_useful_messages() {
        let e = FaultError::SliceTimeout {
            elapsed_ns: 5000.0,
            timeout_ns: 1000.0,
        };
        assert!(e.to_string().contains("slice timeout"));
        assert!(FaultError::RetriesExhausted { attempts: 3 }
            .to_string()
            .contains("3 attempts"));
        assert!(FaultError::QueueOverflow { depth: 512 }
            .to_string()
            .contains("512"));
        assert_eq!(
            FaultError::InvalidSpec("more survivors than keys".into()).to_string(),
            "more survivors than keys"
        );
    }

    #[test]
    fn replica_schedule_is_deterministic_and_order_free() {
        let p = ReplicaFaultProfile::severe();
        let a = replica_schedule(&p, 42, 1, 16.0);
        let b = replica_schedule(&p, 42, 1, 16.0);
        assert_eq!(a, b);
        assert_eq!(timeline_text(&a), timeline_text(&b));
        // A different seed or replica index diverges.
        assert_ne!(a, replica_schedule(&p, 43, 1, 16.0));
        assert_ne!(a, replica_schedule(&p, 42, 2, 16.0));
        // The fleet merge is the per-replica schedules re-sorted, so a
        // replica's own timeline is independent of fleet size.
        let fleet = fleet_schedule(&p, 42, 4, 16.0);
        let r1: Vec<ReplicaEvent> = fleet.iter().filter(|e| e.replica == 1).copied().collect();
        assert_eq!(r1, a);
    }

    #[test]
    fn replica_schedule_disabled_is_empty() {
        let p = ReplicaFaultProfile::disabled();
        assert!(!p.is_enabled());
        assert!(replica_schedule(&p, 7, 0, 64.0).is_empty());
        assert!(fleet_schedule(&p, 7, 8, 64.0).is_empty());
    }

    #[test]
    fn replica_down_windows_never_overlap() {
        let p = ReplicaFaultProfile::scaled(0.5);
        for r in 0..8 {
            let ev = replica_schedule(&p, 3, r, 32.0);
            let mut down = false;
            let mut last = f64::NEG_INFINITY;
            for e in &ev {
                assert!(e.at_ns >= last, "events must be time-sorted");
                last = e.at_ns;
                match e.kind {
                    ReplicaEventKind::Down => {
                        assert!(!down, "crash while already down");
                        down = true;
                    }
                    ReplicaEventKind::Up => {
                        assert!(down, "recovery without a crash");
                        down = false;
                    }
                    ReplicaEventKind::BrownoutStart => {
                        assert!(!down, "brownout started on a dead node");
                    }
                    ReplicaEventKind::BrownoutEnd => {}
                }
            }
        }
    }

    #[test]
    fn replica_hazard_is_monotone_in_rate() {
        // The raw per-interval hazard nests upward in rate: any interval
        // that fires at the low rate also fires at the high rate.
        for r in 0..4u64 {
            for i in 0..64u64 {
                let key = stream(domain::REPLICA, r, i, 0);
                let d = unit_draw(11, key, 0);
                if d < 0.05 {
                    assert!(d < 0.25, "low-rate crash lost at high rate");
                }
            }
        }
        // And the realized crash count does not shrink for this seed.
        let lo = replica_schedule(&ReplicaFaultProfile::scaled(0.05), 11, 0, 64.0);
        let hi = replica_schedule(&ReplicaFaultProfile::scaled(0.25), 11, 0, 64.0);
        let crashes = |ev: &[ReplicaEvent]| {
            ev.iter()
                .filter(|e| e.kind == ReplicaEventKind::Down)
                .count()
        };
        assert!(crashes(&hi) >= crashes(&lo));
        assert!(crashes(&hi) > 0, "severe rate over 64 s must crash");
    }

    #[test]
    fn replica_profile_parsing_accepts_names_and_rates() {
        assert_eq!(
            ReplicaFaultProfile::parse("none").unwrap(),
            ReplicaFaultProfile::disabled()
        );
        assert_eq!(
            ReplicaFaultProfile::parse("mild").unwrap(),
            ReplicaFaultProfile::mild()
        );
        assert_eq!(
            ReplicaFaultProfile::parse("severe").unwrap(),
            ReplicaFaultProfile::severe()
        );
        assert_eq!(
            ReplicaFaultProfile::parse("0.1").unwrap(),
            ReplicaFaultProfile::scaled(0.1)
        );
        assert!(ReplicaFaultProfile::parse("1.5").is_err());
        assert!(ReplicaFaultProfile::parse("flaky").is_err());
    }

    #[test]
    fn timeline_text_is_stable() {
        let ev = vec![
            ReplicaEvent {
                at_ns: 1.5e9,
                replica: 0,
                kind: ReplicaEventKind::Down,
            },
            ReplicaEvent {
                at_ns: 2.5e9,
                replica: 0,
                kind: ReplicaEventKind::Up,
            },
        ];
        let text = timeline_text(&ev);
        assert_eq!(text, "    1500000000 r0 down\n    2500000000 r0 up\n");
    }

    #[test]
    fn stream_keys_are_well_spread() {
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..10 {
            for b in 0..10 {
                for c in 0..10 {
                    seen.insert(stream(domain::SLICE, a, b, c));
                }
            }
        }
        assert_eq!(seen.len(), 1000, "stream keys must not collide");
    }
}
