//! Fleet failure-domain contract — crash/recovery, failover, and the
//! fault-aware report, pinned end to end.
//!
//! Four promises:
//!
//! 1. **Disabled equivalence.** `simulate_fleet_faulty` with every fault
//!    option off is bit-identical to `simulate_fleet`: same metrics, same
//!    report text, `faults: None`. The failure-domain machinery costs
//!    nothing when unused.
//! 2. **Deterministic crash timeline.** With a crash profile on, the
//!    replica events the driver applies are exactly `fleet_schedule` of
//!    `(profile, fault_seed, replicas)` — crash count and downtime in the
//!    report match the pure schedule.
//! 3. **Thread-count invariance.** Metrics, placement log, redispatch
//!    log, and the full report text are byte-identical at 1, 4, and
//!    hardware worker threads, crashes and breaker on.
//! 4. **Conservation under faults.** The audit passes: offered equals
//!    placed plus shed, redispatches reference previously placed
//!    requests, and nothing is lost across a crash.

use longsight::exec;
use longsight::faults::{fleet_schedule, ReplicaEventKind, ReplicaFaultProfile};
use longsight::model::ModelConfig;
use longsight::obs::Recorder;
use longsight::sched::{BreakerConfig, RouterPolicy, SchedPolicy, SloMix};
use longsight::system::serving::{
    simulate_fleet, simulate_fleet_faulty, FleetFaultOptions, SchedOptions, WorkloadConfig,
};
use longsight::system::{LongSightConfig, LongSightSystem, ServingSystem};
use std::sync::Mutex;

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

fn opts() -> SchedOptions {
    SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix::mixed(),
        page_tokens: 1024,
        prefill_chunk_tokens: 128,
        prefill_slots: 1,
        hbm_watermark: 0.01,
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_s: 10.0,
        context_tokens: (16_384, 32_768),
        output_tokens: (32, 128),
        duration_s: 6.0,
        seed: 11,
    }
}

fn fleet_of(n: usize) -> Vec<Box<dyn ServingSystem>> {
    let model = ModelConfig::llama3_1b();
    (0..n)
        .map(|_| {
            Box::new(LongSightSystem::new(
                LongSightConfig::paper_default(),
                model.clone(),
            )) as Box<dyn ServingSystem>
        })
        .collect()
}

/// Seed 11 gives two non-overlapping single-replica crashes on r0 at this
/// rate — the clean "one node dies, the fleet routes around it" regime.
fn crashy() -> FleetFaultOptions {
    FleetFaultOptions {
        profile: ReplicaFaultProfile::scaled(0.1),
        fault_seed: 11,
        breaker: Some(BreakerConfig::serving_default()),
        shed_queue_cap: None,
    }
}

#[test]
fn disabled_fault_options_are_bit_identical_to_simulate_fleet() {
    let model = ModelConfig::llama3_1b();
    let run_plain = || {
        let mut fleet = fleet_of(2);
        simulate_fleet(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &mut Recorder::disabled(),
        )
    };
    let run_faulty = || {
        let mut fleet = fleet_of(2);
        simulate_fleet_faulty(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &FleetFaultOptions::disabled(),
            &mut Recorder::disabled(),
        )
    };
    let (m0, rep0) = run_plain();
    let (m1, rep1) = run_faulty();
    assert_eq!(m0, m1, "disabled fault options must not perturb metrics");
    assert_eq!(
        rep0, rep1,
        "disabled fault options must not perturb the report"
    );
    assert!(
        rep1.faults.is_none(),
        "no fault summary when faults are off"
    );
    assert_eq!(rep0.to_text(), rep1.to_text());
}

#[test]
fn crash_timeline_matches_the_pure_schedule() {
    let fopts = crashy();
    let wl = workload();
    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(2);
    let (_, rep) = simulate_fleet_faulty(
        &mut fleet,
        &model,
        &wl,
        &opts(),
        RouterPolicy::JsqSpillover,
        &fopts,
        &mut Recorder::disabled(),
    );
    let faults = rep
        .faults
        .as_ref()
        .expect("crash profile must yield a summary");
    let schedule = fleet_schedule(&fopts.profile, fopts.fault_seed, 2, wl.duration_s);
    let downs: Vec<_> = schedule
        .iter()
        .filter(|e| e.kind == ReplicaEventKind::Down)
        .collect();
    let brownouts = schedule
        .iter()
        .filter(|e| e.kind == ReplicaEventKind::BrownoutStart)
        .count();
    assert_eq!(
        faults.crashes,
        downs.len(),
        "crash count must match the schedule"
    );
    assert_eq!(
        faults.brownouts, brownouts,
        "brownout count must match the schedule"
    );
    // Downtime is the sum of scheduled down windows, clipped at nothing:
    // the tail of the timeline (repairs included) is drained before the
    // final drain, so every crash serves its full repair window.
    let scheduled_down: f64 = downs
        .iter()
        .map(|d| {
            schedule
                .iter()
                .find(|u| {
                    u.kind == ReplicaEventKind::Up && u.replica == d.replica && u.at_ns > d.at_ns
                })
                .map(|u| u.at_ns - d.at_ns)
                .unwrap_or(0.0)
        })
        .sum();
    let reported: f64 = faults.downtime_ns.iter().sum();
    assert!(
        (reported - scheduled_down).abs() < 1.0,
        "downtime {reported} ns must match the schedule's {scheduled_down} ns"
    );
    assert!(
        downs.iter().all(|d| d.replica == 0),
        "seed 11 crashes r0 only"
    );
}

#[test]
fn faulty_fleet_is_byte_identical_at_any_thread_count() {
    let runs = across_thread_counts(|| {
        let model = ModelConfig::llama3_1b();
        let mut fleet = fleet_of(2);
        let (m, rep) = simulate_fleet_faulty(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &crashy(),
            &mut Recorder::disabled(),
        );
        (m.to_text(), rep.to_text(), rep)
    });
    for (t, (_, _, rep)) in &runs {
        assert_eq!(rep.audit_violation, None, "audit failed at {t} threads");
    }
    let (_, (m0, text0, rep0)) = &runs[0];
    assert!(
        rep0.faults.as_ref().is_some_and(|f| f.crashes > 0),
        "the crash profile must actually crash something"
    );
    for (t, (m, text, rep)) in &runs[1..] {
        assert_eq!(m, m0, "metrics diverged at {t} threads");
        assert_eq!(text, text0, "report text diverged at {t} threads");
        assert_eq!(rep, rep0, "fleet report diverged at {t} threads");
    }
}

#[test]
fn crashes_conserve_requests_and_redispatch_placed_work() {
    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(2);
    let (m, rep) = simulate_fleet_faulty(
        &mut fleet,
        &model,
        &workload(),
        &opts(),
        RouterPolicy::JsqSpillover,
        &crashy(),
        &mut Recorder::disabled(),
    );
    assert_eq!(rep.audit_violation, None);
    let faults = rep.faults.as_ref().unwrap();
    // Offered = placed + shed, and nothing vanishes.
    assert_eq!(
        faults.offered,
        rep.placements.len() + faults.shed.len(),
        "every arrival is placed once or shed with a reason"
    );
    // Every redispatch names a request the router placed earlier and a
    // live target replica.
    for r in &faults.redispatches {
        assert!(
            rep.placements.iter().any(|&(id, _)| id == r.id),
            "redispatch of unplaced request {}",
            r.id
        );
        assert!(r.to < 2 && r.from < 2);
        assert!(!r.reason.is_empty());
    }
    // Shed requests never appear in the placement log.
    for s in &faults.shed {
        assert!(
            rep.placements.iter().all(|&(id, _)| id != s.id),
            "request {} both shed and placed",
            s.id
        );
    }
    // The run still finishes real work through two crashes.
    assert!(m.completed > 0);
    assert!(faults.crashes > 0);
}

#[test]
fn breaker_mode_diverges_from_naive_routing_under_a_crash() {
    // Same workload, same crash timeline; only the breaker differs. The
    // naive fleet keeps placing new arrivals on the dead replica (to JSQ
    // its freed pages look like headroom); the breaker fleet does not
    // place anything there while the breaker is held open.
    let model = ModelConfig::llama3_1b();
    let run = |breaker: Option<BreakerConfig>| {
        let mut fleet = fleet_of(2);
        let fopts = FleetFaultOptions {
            breaker,
            ..crashy()
        };
        let (_, rep) = simulate_fleet_faulty(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &fopts,
            &mut Recorder::disabled(),
        );
        assert_eq!(rep.audit_violation, None);
        rep.placement_log()
    };
    let naive = run(None);
    let guarded = run(Some(BreakerConfig::serving_default()));
    assert_ne!(
        naive, guarded,
        "the breaker must change where new arrivals land during downtime"
    );
}
