//! Fleet failure-domain contract — crash/recovery, failover, and the
//! fault-aware report, pinned end to end.
//!
//! Four promises:
//!
//! 1. **Disabled equivalence.** `simulate_fleet_faulty` with every fault
//!    option off is bit-identical to `simulate_fleet`: same metrics, same
//!    report text, `faults: None`. The failure-domain machinery costs
//!    nothing when unused.
//! 2. **Deterministic crash timeline.** With a crash profile on, the
//!    replica events the driver applies are exactly `fleet_schedule` of
//!    `(profile, fault_seed, replicas)` — crash count and downtime in the
//!    report match the pure schedule.
//! 3. **Thread-count invariance.** Metrics, placement log, redispatch
//!    log, and the full report text are byte-identical at 1, 4, and
//!    hardware worker threads, crashes and breaker on.
//! 4. **Conservation under faults.** The audit passes: offered equals
//!    placed plus shed, redispatches reference previously placed
//!    requests, and nothing is lost across a crash.

use longsight::exec;
use longsight::faults::{fleet_schedule, timeline_text, ReplicaEventKind, ReplicaFaultProfile};
use longsight::model::ModelConfig;
use longsight::obs::Recorder;
use longsight::sched::{
    BreakerConfig, BreakerState, CircuitBreaker, RouterPolicy, SchedPolicy, SloBurnSummary,
    SloClass, SloMix,
};
use longsight::system::serving::{
    simulate_fleet, simulate_fleet_faulty, FleetFaultOptions, SchedOptions, WorkloadConfig,
};
use longsight::system::{LongSightConfig, LongSightSystem, ServingSystem};
use std::sync::Mutex;

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

fn opts() -> SchedOptions {
    SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix::mixed(),
        page_tokens: 1024,
        prefill_chunk_tokens: 128,
        prefill_slots: 1,
        hbm_watermark: 0.01,
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_s: 10.0,
        context_tokens: (16_384, 32_768),
        output_tokens: (32, 128),
        duration_s: 6.0,
        seed: 11,
    }
}

fn fleet_of(n: usize) -> Vec<Box<dyn ServingSystem>> {
    let model = ModelConfig::llama3_1b();
    (0..n)
        .map(|_| {
            Box::new(LongSightSystem::new(
                LongSightConfig::paper_default(),
                model.clone(),
            )) as Box<dyn ServingSystem>
        })
        .collect()
}

/// Seed 11 gives two non-overlapping single-replica crashes on r0 at this
/// rate — the clean "one node dies, the fleet routes around it" regime.
fn crashy() -> FleetFaultOptions {
    FleetFaultOptions {
        profile: ReplicaFaultProfile::scaled(0.1),
        fault_seed: 11,
        breaker: Some(BreakerConfig::serving_default()),
        shed_queue_cap: None,
    }
}

#[test]
fn disabled_fault_options_are_bit_identical_to_simulate_fleet() {
    let model = ModelConfig::llama3_1b();
    let run_plain = || {
        let mut fleet = fleet_of(2);
        simulate_fleet(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &mut Recorder::disabled(),
        )
    };
    let run_faulty = || {
        let mut fleet = fleet_of(2);
        simulate_fleet_faulty(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &FleetFaultOptions::disabled(),
            &mut Recorder::disabled(),
        )
    };
    let (m0, rep0) = run_plain();
    let (m1, rep1) = run_faulty();
    assert_eq!(m0, m1, "disabled fault options must not perturb metrics");
    assert_eq!(
        rep0, rep1,
        "disabled fault options must not perturb the report"
    );
    assert!(
        rep1.faults.is_none(),
        "no fault summary when faults are off"
    );
    assert_eq!(rep0.to_text(), rep1.to_text());
}

#[test]
fn crash_timeline_matches_the_pure_schedule() {
    let fopts = crashy();
    let wl = workload();
    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(2);
    let (_, rep) = simulate_fleet_faulty(
        &mut fleet,
        &model,
        &wl,
        &opts(),
        RouterPolicy::JsqSpillover,
        &fopts,
        &mut Recorder::disabled(),
    );
    let faults = rep
        .faults
        .as_ref()
        .expect("crash profile must yield a summary");
    let schedule = fleet_schedule(&fopts.profile, fopts.fault_seed, 2, wl.duration_s);
    let downs: Vec<_> = schedule
        .iter()
        .filter(|e| e.kind == ReplicaEventKind::Down)
        .collect();
    let brownouts = schedule
        .iter()
        .filter(|e| e.kind == ReplicaEventKind::BrownoutStart)
        .count();
    assert_eq!(
        faults.crashes,
        downs.len(),
        "crash count must match the schedule"
    );
    assert_eq!(
        faults.brownouts, brownouts,
        "brownout count must match the schedule"
    );
    // Downtime is the sum of scheduled down windows, clipped at nothing:
    // the tail of the timeline (repairs included) is drained before the
    // final drain, so every crash serves its full repair window.
    let scheduled_down: f64 = downs
        .iter()
        .map(|d| {
            schedule
                .iter()
                .find(|u| {
                    u.kind == ReplicaEventKind::Up && u.replica == d.replica && u.at_ns > d.at_ns
                })
                .map(|u| u.at_ns - d.at_ns)
                .unwrap_or(0.0)
        })
        .sum();
    let reported: f64 = faults.downtime_ns.iter().sum();
    assert!(
        (reported - scheduled_down).abs() < 1.0,
        "downtime {reported} ns must match the schedule's {scheduled_down} ns"
    );
    assert!(
        downs.iter().all(|d| d.replica == 0),
        "seed 11 crashes r0 only"
    );
}

#[test]
fn faulty_fleet_is_byte_identical_at_any_thread_count() {
    let runs = across_thread_counts(|| {
        let model = ModelConfig::llama3_1b();
        let mut fleet = fleet_of(2);
        let (m, rep) = simulate_fleet_faulty(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &crashy(),
            &mut Recorder::disabled(),
        );
        (m.to_text(), rep.to_text(), rep)
    });
    for (t, (_, _, rep)) in &runs {
        assert_eq!(rep.audit_violation, None, "audit failed at {t} threads");
    }
    let (_, (m0, text0, rep0)) = &runs[0];
    assert!(
        rep0.faults.as_ref().is_some_and(|f| f.crashes > 0),
        "the crash profile must actually crash something"
    );
    for (t, (m, text, rep)) in &runs[1..] {
        assert_eq!(m, m0, "metrics diverged at {t} threads");
        assert_eq!(text, text0, "report text diverged at {t} threads");
        assert_eq!(rep, rep0, "fleet report diverged at {t} threads");
    }
}

#[test]
fn crashes_conserve_requests_and_redispatch_placed_work() {
    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(2);
    let (m, rep) = simulate_fleet_faulty(
        &mut fleet,
        &model,
        &workload(),
        &opts(),
        RouterPolicy::JsqSpillover,
        &crashy(),
        &mut Recorder::disabled(),
    );
    assert_eq!(rep.audit_violation, None);
    let faults = rep.faults.as_ref().unwrap();
    // Offered = placed + shed, and nothing vanishes.
    assert_eq!(
        faults.offered,
        rep.placements.len() + faults.shed.len(),
        "every arrival is placed once or shed with a reason"
    );
    // Every redispatch names a request the router placed earlier and a
    // live target replica.
    for r in &faults.redispatches {
        assert!(
            rep.placements.iter().any(|&(id, _)| id == r.id),
            "redispatch of unplaced request {}",
            r.id
        );
        assert!(r.to < 2 && r.from < 2);
        assert!(!r.reason.is_empty());
    }
    // Shed requests never appear in the placement log.
    for s in &faults.shed {
        assert!(
            rep.placements.iter().all(|&(id, _)| id != s.id),
            "request {} both shed and placed",
            s.id
        );
    }
    // The run still finishes real work through two crashes.
    assert!(m.completed > 0);
    assert!(faults.crashes > 0);
}

#[test]
fn breaker_mode_diverges_from_naive_routing_under_a_crash() {
    // Same workload, same crash timeline; only the breaker differs. The
    // naive fleet keeps placing new arrivals on the dead replica (to JSQ
    // its freed pages look like headroom); the breaker fleet does not
    // place anything there while the breaker is held open.
    let model = ModelConfig::llama3_1b();
    let run = |breaker: Option<BreakerConfig>| {
        let mut fleet = fleet_of(2);
        let fopts = FleetFaultOptions {
            breaker,
            ..crashy()
        };
        let (_, rep) = simulate_fleet_faulty(
            &mut fleet,
            &model,
            &workload(),
            &opts(),
            RouterPolicy::JsqSpillover,
            &fopts,
            &mut Recorder::disabled(),
        );
        assert_eq!(rep.audit_violation, None);
        rep.placement_log()
    };
    let naive = run(None);
    let guarded = run(Some(BreakerConfig::serving_default()));
    assert_ne!(
        naive, guarded,
        "the breaker must change where new arrivals land during downtime"
    );
}

/// The fault block and the replica timeline are byte-pinned goldens: any
/// formatting or accounting drift in `FleetFaultSummary` rendering or
/// `timeline_text` must show up as an explicit diff here, not as a silent
/// change to the checked-in results files.
#[test]
fn fault_summary_and_timeline_render_the_pinned_golden_text() {
    let timeline = timeline_text(&fleet_schedule(
        &ReplicaFaultProfile::scaled(0.1),
        11,
        2,
        6.0,
    ));
    assert_eq!(
        timeline,
        "    2996994160 r1 brownout-start\n\
         \x20   3384393489 r0 down\n\
         \x20   3996994160 r1 brownout-end\n\
         \x20   5308581298 r1 brownout-start\n\
         \x20   6308581298 r1 brownout-end\n\
         \x20   6384393489 r0 up\n"
    );

    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(2);
    let (_, rep) = simulate_fleet_faulty(
        &mut fleet,
        &model,
        &workload(),
        &opts(),
        RouterPolicy::JsqSpillover,
        &crashy(),
        &mut Recorder::disabled(),
    );
    let text = rep.to_text();
    let fault_block = "  faults: crashes 1 | brownouts 2 | redispatched 2 | shed 0\n\
                       \x20 downtime: r0 3.00s r1 0.00s\n\
                       \x20 shed by class: interactive 0 batch 0 best-effort 0\n\
                       \x20 goodput: 55 completed of 55 offered (100.0%)\n";
    assert!(
        text.contains(fault_block),
        "fault block drifted from the pinned golden:\n{text}"
    );
}

/// The burn summary's two-line report block, pinned for both the alerting
/// and the quiet shape.
#[test]
fn slo_burn_summary_renders_the_pinned_text() {
    let mut s = SloBurnSummary {
        slo_ms: 2500.0,
        budget: 0.05,
        completions: 28,
        misses: 10,
        consumed: 7.142857142857143,
        alert_windows: 4,
        first_alert_ms: 6750.0,
    };
    assert_eq!(
        s.to_text(),
        "  slo burn: deadline 2500 ms budget 5.0% | 28 interactive, 10 missed | budget consumed 714.3%\n\
         \x20 slo burn alerts: 4 window(s), first at 6750 ms\n"
    );
    s.alert_windows = 0;
    s.misses = 0;
    s.consumed = 0.0;
    assert_eq!(
        s.to_text(),
        "  slo burn: deadline 2500 ms budget 5.0% | 28 interactive, 0 missed | budget consumed 0.0%\n\
         \x20 slo burn alerts: none\n"
    );
}

/// Every event the serving loop can feed a circuit breaker, as a closed
/// transition table: the property test below drives a deterministic event
/// stream through the FSM and checks each step lands in the legal set.
#[derive(Debug, Clone, Copy)]
enum BreakerEvent {
    ForceOpen,
    Recovery,
    Poll,
    Good(SloClass),
    Miss,
    Degraded(u64),
}

/// splitmix64 — the same deterministic stream generator the router uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Transition-table property test for the circuit breaker FSM:
///
/// * every `(state, event)` lands in that pair's legal successor set;
/// * a transition is reported (`Some`) exactly when the state changed;
/// * a half-open breaker never re-opens on a clean probe — only an
///   interactive deadline miss (or a crash) can send it back to open;
/// * half-open → closed requires the full clean-probe quota.
#[test]
fn breaker_fsm_transitions_stay_in_the_legal_table() {
    use BreakerState::{Closed, HalfOpen, Open};
    let cfg = BreakerConfig::serving_default();
    let mut b = CircuitBreaker::new(cfg);
    let mut now_ns = 0.0f64;
    let mut clean_probes_since_half_open = 0u32;
    for step in 0..20_000u64 {
        now_ns += (splitmix64(step) % 200_000_000) as f64;
        let before = b.state();
        let ev = match splitmix64(step ^ 0xdead_beef) % 10 {
            0 => BreakerEvent::ForceOpen,
            1 => BreakerEvent::Recovery,
            2 | 3 => BreakerEvent::Poll,
            4 | 5 => BreakerEvent::Good(match splitmix64(step ^ 0x00c0_ffee) % 3 {
                0 => SloClass::Interactive,
                1 => SloClass::Batch,
                _ => SloClass::BestEffort,
            }),
            6..=8 => BreakerEvent::Miss,
            _ => BreakerEvent::Degraded(splitmix64(step ^ 0xf00d) % 2048),
        };
        let reported = match ev {
            BreakerEvent::ForceOpen => b.force_open(now_ns),
            BreakerEvent::Recovery => b.on_recovery(),
            BreakerEvent::Poll => b.poll(now_ns),
            BreakerEvent::Good(class) => b.note_completion(class, cfg.slo_ms * 0.5, now_ns),
            BreakerEvent::Miss => {
                b.note_completion(SloClass::Interactive, cfg.slo_ms * 2.0, now_ns)
            }
            BreakerEvent::Degraded(tok) => b.note_degraded(tok, now_ns),
        };
        let after = b.state();

        // Reported iff changed, and the report names the new state.
        assert_eq!(
            reported.is_some(),
            before != after,
            "step {step}: {before:?} --{ev:?}--> {after:?} reported {reported:?}"
        );
        if let Some(s) = reported {
            assert_eq!(s, after, "step {step}: report must name the new state");
        }

        // The legal successor set of (state, event).
        let legal: &[BreakerState] = match (before, ev) {
            (_, BreakerEvent::ForceOpen) => &[Open],
            (Open, BreakerEvent::Recovery) => &[HalfOpen],
            (s, BreakerEvent::Recovery) => match s {
                Closed => &[Closed],
                HalfOpen => &[HalfOpen],
                Open => unreachable!(),
            },
            (Open, BreakerEvent::Poll) => &[Open, HalfOpen],
            (Closed, BreakerEvent::Poll) => &[Closed],
            (HalfOpen, BreakerEvent::Poll) => &[HalfOpen],
            (Closed, BreakerEvent::Miss) => &[Closed, Open],
            (Closed, BreakerEvent::Good(_)) => &[Closed],
            (Closed, BreakerEvent::Degraded(_)) => &[Closed, Open],
            (HalfOpen, BreakerEvent::Miss) => &[Open],
            (HalfOpen, BreakerEvent::Good(_)) => &[HalfOpen, Closed],
            (HalfOpen, BreakerEvent::Degraded(_)) => &[HalfOpen],
            (Open, _) => &[Open],
        };
        assert!(
            legal.contains(&after),
            "step {step}: illegal transition {before:?} --{ev:?}--> {after:?}"
        );

        // Probes never regress: a clean completion cannot open a breaker,
        // and closing out of half-open needs the full probe quota.
        if before == HalfOpen {
            match ev {
                BreakerEvent::Good(_) => {
                    assert_ne!(after, Open, "step {step}: clean probe opened the breaker");
                    clean_probes_since_half_open += 1;
                    if after == Closed {
                        assert!(
                            clean_probes_since_half_open >= cfg.probe_successes,
                            "step {step}: closed after only {clean_probes_since_half_open} probes"
                        );
                    }
                }
                BreakerEvent::Degraded(_) => {
                    assert_ne!(after, Open, "step {step}: degraded tokens opened a probe");
                }
                _ => {}
            }
        }
        if after != HalfOpen || before != HalfOpen {
            clean_probes_since_half_open = 0;
        }
    }
}
