//! Scheduler contract — the `longsight-sched` continuous-batching layer.
//!
//! Three promises are pinned here:
//!
//! 1. **Legacy equivalence.** The scheduler is now the single serving
//!    implementation; with the default all-interactive FIFO options, the
//!    rewired `simulate` / `simulate_with_faults` must reproduce the
//!    pre-scheduler metrics **bit-identically** (values captured from the
//!    legacy loop before the rewire, including the fault log's FNV-1a
//!    fingerprint).
//! 2. **Memory safety.** The paged KV manager never exceeds the HBM
//!    watermark ceiling in enforce mode, never leaks a page, and its
//!    end-of-run audit is clean — at any worker-thread count, with
//!    bit-identical reports.
//! 3. **SLO value.** On a mixed fleet under HBM pressure, the SLO-aware
//!    policy strictly improves the interactive p99 token latency over FIFO
//!    fed byte-identical arrivals (the `results/sched_comparison.txt`
//!    claim).

use longsight::exec;
use longsight::faults::{FaultInjector, FaultProfile, RetryPolicy};
use longsight::model::ModelConfig;
use longsight::obs::Recorder;
use longsight::sched::{SchedPolicy, SloClass, SloMix};
use longsight::system::serving::{
    simulate, simulate_scheduled, simulate_with_faults, SchedOptions, WorkloadConfig,
};
use longsight::system::{LongSightConfig, LongSightSystem};
use std::sync::Mutex;

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Thread counts exercised: exact serial, a fixed pool, and whatever the
/// host hardware reports (deduplicated).
fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

fn workload(rate: f64, seed: u64, dur: f64, ctx: (usize, usize)) -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_s: rate,
        context_tokens: ctx,
        output_tokens: (16, 64),
        duration_s: dur,
        seed,
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The mixed-fleet configuration behind `results/sched_comparison.txt`:
/// tight HBM watermark so best-effort decoders get evicted to DReX, small
/// prefill chunks so prefill piggybacks into memory-bound decode steps.
fn pressure_opts(policy: SchedPolicy) -> SchedOptions {
    SchedOptions {
        policy,
        mix: SloMix::mixed(),
        page_tokens: 1024,
        prefill_chunk_tokens: 128,
        prefill_slots: 1,
        hbm_watermark: 0.01,
    }
}

/// One pinned legacy load point: workload knobs, expected completion count,
/// and the bit patterns of the six reported metrics
/// (tput, p50/p99 token, p50/p99 request, mean batch).
type PinnedRun = (f64, u64, f64, (usize, usize), usize, [u64; 6]);

#[test]
fn fifo_default_reproduces_legacy_metrics_bit_exact() {
    // Captured from the pre-scheduler serving loop.
    let pinned: [PinnedRun; 3] = [
        (
            2.0,
            3,
            5.0,
            (32_768, 65_536),
            9,
            [
                0x4052f33c0853542d,
                0x3ff4b4c8a9dd19ce,
                0x3ff7edf6f27f3d3d,
                0x4083d6e45a5798e5,
                0x4088e58c773bfafd,
                0x3ff017e225515a4f,
            ],
        ),
        (
            8.0,
            11,
            8.0,
            (32_768, 262_144),
            58,
            [
                0x40708560a94ded37,
                0x3ffd761d73630a3d,
                0x400aa8765a640adc,
                0x40a4164a54d4521c,
                0x40c2150bb127d609,
                0x3ff23c82f866c96e,
            ],
        ),
        (
            16.0,
            11,
            8.0,
            (32_768, 131_072),
            112,
            [
                0x4080cddee8d13e95,
                0x3ffd9cdd2477ddcd,
                0x4004df0ff3da629e,
                0x4091d4017bea668c,
                0x40a44b4a1eead318,
                0x3ff6c43178ccaa1a,
            ],
        ),
    ];
    for (rate, seed, dur, ctx, completed, bits) in pinned {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let m = simulate(&mut sys, &model, &workload(rate, seed, dur, ctx));
        assert_eq!(m.completed, completed, "rate {rate}");
        assert_eq!(m.rejected, 0, "rate {rate}");
        assert_eq!(m.in_flight, 0, "rate {rate}");
        let got = [
            m.throughput_tps.to_bits(),
            m.p50_token_ms.to_bits(),
            m.p99_token_ms.to_bits(),
            m.p50_request_ms.to_bits(),
            m.p99_request_ms.to_bits(),
            m.mean_batch.to_bits(),
        ];
        assert_eq!(got, bits, "metrics drifted from legacy at rate {rate}");
    }
}

#[test]
fn fifo_faulted_reproduces_legacy_log_bit_exact() {
    let model = ModelConfig::llama3_1b();
    let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let wl = workload(2.0, 3, 5.0, (32_768, 65_536));
    let inj = FaultInjector::new(FaultProfile::scaled(0.2), 11);
    let retry = RetryPolicy::serving_default();
    let (m, log) = simulate_with_faults(&mut sys, &model, &wl, &inj, &retry);
    assert_eq!(m.completed, 8);
    assert_eq!(m.retried_tokens, 38);
    assert_eq!(m.degraded_tokens, 0);
    assert_eq!(m.failed_requests, 1);
    assert_eq!(m.p99_token_ms.to_bits(), 0x400ac0cabb54f34d);
    assert_eq!(m.throughput_tps.to_bits(), 0x4050fbda7d843292);
    assert_eq!(log.len(), 79);
    assert_eq!(fnv1a(&log.to_text()), 0x359a49ad8600870b);
}

#[test]
fn memory_invariants_hold_at_any_thread_count() {
    let runs = across_thread_counts(|| {
        let model = ModelConfig::llama3_1b();
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let wl = workload(8.0, 11, 6.0, (16_384, 32_768));
        let mut rec = Recorder::disabled();
        let (m, rep, _) = simulate_scheduled(
            &mut sys,
            &model,
            &wl,
            &pressure_opts(SchedPolicy::SloAware),
            None,
            &mut rec,
            None,
        );
        (m.to_text(), rep)
    });
    for (t, (_, rep)) in &runs {
        assert_eq!(rep.leaked_pages, 0, "page leak at {t} threads");
        assert_eq!(
            rep.invariant_violation, None,
            "ledger audit failed at {t} threads"
        );
        assert!(
            rep.pages.peak_hbm <= rep.pages.hbm_limit,
            "HBM watermark exceeded at {t} threads: {} > {}",
            rep.pages.peak_hbm,
            rep.pages.hbm_limit
        );
        assert!(rep.preemptions > 0, "pressure config must evict");
        assert_eq!(rep.preemptions, rep.resumes, "evicted work must resume");
    }
    // Bit-identical metrics and scheduler reports at every worker count.
    let (_, (text0, rep0)) = &runs[0];
    for (t, (text, rep)) in &runs[1..] {
        assert_eq!(text, text0, "metrics diverged at {t} threads");
        assert_eq!(rep, rep0, "scheduler report diverged at {t} threads");
    }
}

#[test]
fn slo_aware_strictly_improves_interactive_p99_token_latency() {
    let model = ModelConfig::llama3_1b();
    // Exactly the `results/sched_comparison.txt` 8 req/s row (the bench
    // draws outputs from 32-128 tokens, unlike the short-output pinned
    // legacy runs above).
    let wl = WorkloadConfig {
        output_tokens: (32, 128),
        ..workload(8.0, 11, 8.0, (16_384, 32_768))
    };
    let run = |policy| {
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let mut rec = Recorder::disabled();
        let (_, rep, _) = simulate_scheduled(
            &mut sys,
            &model,
            &wl,
            &pressure_opts(policy),
            None,
            &mut rec,
            None,
        );
        rep
    };
    let fifo = run(SchedPolicy::Fifo);
    let slo = run(SchedPolicy::SloAware);
    let i = SloClass::Interactive.index();
    // Identical fleet: class draws depend only on the workload seed.
    for c in SloClass::ALL {
        assert_eq!(
            fifo.per_class[c.index()].arrived,
            slo.per_class[c.index()].arrived,
            "class draws must not depend on the policy"
        );
    }
    assert!(
        slo.per_class[i].p99_token_ms < fifo.per_class[i].p99_token_ms,
        "SLO-aware must strictly improve interactive p99 token latency: {} vs {}",
        slo.per_class[i].p99_token_ms,
        fifo.per_class[i].p99_token_ms
    );
    // No work is lost to preemption: everything admitted completes.
    assert_eq!(slo.per_class[i].failed, 0);
    let done: usize = slo.per_class.iter().map(|c| c.completed).sum();
    let arrived: usize = slo.per_class.iter().map(|c| c.arrived).sum();
    assert_eq!(done, arrived);
}
