//! Parameter-tuning harness for the induction construction (run explicitly):
//!
//! ```text
//! cargo test --test param_tuning -- --ignored --nocapture
//! ```
//!
//! For each candidate parameter set it reports: dense vs window perplexity
//! (does the model depend on long-range retrieval?), and the best filter
//! ratio achievable within a 5 % perplexity budget with raw signs vs ITQ
//! (does the representation show the paper's anisotropy pathology?).

use longsight_core::{
    training, HybridConfig, ItqConfig, LongSightBackend, RotationTable, ThresholdTable,
};
use longsight_model::{
    corpus, perplexity, DenseBackend, InductionParams, Model, ModelConfig, ModelWeights,
    SlidingWindowBackend,
};
use longsight_tensor::SimRng;

const CTX: usize = 768;
const WINDOW: usize = 192;
const SINKS: usize = 16;
const SKIP: usize = 48;

fn probe(params: &InductionParams, label: &str) {
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(&cfg, params, &mut rng));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), CTX, &mut rng);

    let dense = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), SKIP);
    let window = perplexity::evaluate(
        &model,
        &text,
        &mut SlidingWindowBackend::new(WINDOW, SINKS),
        SKIP,
    );

    let calib: Vec<u32> = text.tokens[..512.min(text.tokens.len())].to_vec();
    let rotations = training::train_rotations(
        &model,
        &calib,
        &ItqConfig {
            iterations: 25,
            seed: 3,
        },
    );
    let hybrid_cfg = HybridConfig {
        window: WINDOW,
        sinks: SINKS,
        top_k: 96,
    };
    let best_ratio = |rot: &RotationTable| -> (f64, u32) {
        let mut best = (1.0f64, 0u32);
        for threshold in (0..=cfg.head_dim as u32).step_by(2) {
            let mut backend = LongSightBackend::new(
                hybrid_cfg.clone(),
                ThresholdTable::uniform(cfg.layers, cfg.kv_heads, threshold),
                rot.clone(),
            );
            let r = perplexity::evaluate(&model, &text, &mut backend, SKIP);
            if r.relative_increase_over(&dense) <= 0.05 {
                let fr = backend.stats().filter_ratio_nonwindow();
                if fr > best.0 {
                    best = (fr, threshold);
                }
            } else {
                break;
            }
        }
        best
    };
    let raw = best_ratio(&RotationTable::identity(
        cfg.layers,
        cfg.kv_heads,
        cfg.head_dim,
    ));
    let itq = best_ratio(&rotations);
    println!(
        "[{label}] dense ppl {:.1} (pred CE {:.2}) | window ppl {:.1} (+{:.0}%) | raw {:.1}x@th{} | itq {:.1}x@th{} | itq/raw {:.2}",
        dense.perplexity,
        dense.predictable_cross_entropy.unwrap_or(f64::NAN),
        window.perplexity,
        100.0 * (window.perplexity / dense.perplexity - 1.0),
        raw.0,
        raw.1,
        itq.0,
        itq.1,
        itq.0 / raw.0,
    );
}

#[test]
#[ignore = "manual tuning harness"]
fn sweep_parameters() {
    let base = InductionParams::default();
    for (dc, power, noise) in [
        (0.1f32, 0.5f32, 0.25f32),
        (0.2, 0.5, 0.25),
        (0.3, 0.5, 0.25),
        (0.2, 0.6, 0.4),
        (0.3, 0.3, 0.25),
    ] {
        let p = InductionParams {
            key_dc: dc,
            content_spectrum_power: power,
            kq_noise: noise,
            ..base.clone()
        };
        probe(&p, &format!("dc={dc},p={power},n={noise}"));
    }
}
