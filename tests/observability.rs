//! Observability contract — the `longsight-obs` tracing/metrics layer.
//!
//! The tracer records **simulated** time on the serial control path of each
//! simulator, so exported traces must be byte-identical at any worker-thread
//! count and across same-seed reruns; the disabled recorder must be
//! invisible (same metrics as the uninstrumented entry points, nothing
//! captured); span trees must nest properly per track; every fault-log
//! entry must appear as exactly one `fault.*` trace instant; and the
//! per-token attribution table's total row must reproduce the run's
//! reported token-latency percentiles bit-for-bit.

use longsight::exec;
use longsight::faults::{FaultInjector, FaultLog, FaultProfile, RetryPolicy};
use longsight::model::ModelConfig;
use longsight::obs::{json, Recorder};
use longsight::system::attribution::OVERLAP_HIDDEN;
use longsight::system::serving::{
    simulate, simulate_observed, simulate_with_faults, ServeMetrics, WorkloadConfig,
};
use longsight::system::{
    LongSightConfig, LongSightSystem, LookaheadConfig, SpecCharge, TokenAttribution,
};
use std::sync::Mutex;

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Thread counts exercised: exact serial, a fixed pool, and whatever the
/// host hardware reports (deduplicated).
fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        duration_s: 3.0,
        ..WorkloadConfig::long_context_chat()
    }
}

/// One fully-observed serving run: fault injection at `rate` (0.0 = none),
/// recording on, attribution collected.
fn observed_run(rate: f64) -> (ServeMetrics, FaultLog, Recorder, TokenAttribution) {
    let model = ModelConfig::llama3_8b();
    let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let mut rec = Recorder::enabled();
    let mut attr = TokenAttribution::new();
    let inj = FaultInjector::new(FaultProfile::scaled(rate), 11);
    let retry = RetryPolicy::serving_default();
    let faults = (rate > 0.0).then_some((&inj, &retry));
    let (metrics, log) = simulate_observed(
        &mut sys,
        &model,
        &workload(),
        faults,
        &mut rec,
        Some(&mut attr),
    );
    (metrics, log, rec, attr)
}

#[test]
fn trace_export_is_bit_identical_across_thread_counts_and_reruns() {
    let runs = across_thread_counts(|| {
        let export = |(m, log, rec, _): (ServeMetrics, FaultLog, Recorder, _)| {
            (
                rec.chrome_trace_json(),
                rec.metrics_json(),
                rec.text_report(),
                log.to_text(),
                m,
            )
        };
        let first = export(observed_run(0.2));
        // Same seed, same thread count: the export must not depend on any
        // ambient state between runs.
        let second = export(observed_run(0.2));
        assert_eq!(first, second, "same-seed reruns diverged");
        first
    });
    let (_, baseline) = &runs[0];
    assert!(
        baseline.0.contains("\"ph\":\"X\""),
        "trace should contain complete events"
    );
    for (threads, got) in &runs[1..] {
        assert_eq!(
            got, baseline,
            "trace/metrics export diverged at {threads} threads"
        );
    }
}

#[test]
fn disabled_recorder_is_invisible() {
    let model = ModelConfig::llama3_8b();
    let wl = workload();

    // Fault-free: the plain entry point and the observed one with a no-op
    // recorder must produce identical metrics, and nothing gets captured.
    let mut plain_sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let plain = simulate(&mut plain_sys, &model, &wl);
    let mut obs_sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let mut rec = Recorder::disabled();
    let (observed, _) = simulate_observed(&mut obs_sys, &model, &wl, None, &mut rec, None);
    assert_eq!(plain, observed, "disabled recorder changed the simulation");
    assert!(rec.spans().is_empty() && rec.instants().is_empty());

    // Faulted: same identity against `simulate_with_faults`.
    let inj = FaultInjector::new(FaultProfile::scaled(0.2), 11);
    let retry = RetryPolicy::serving_default();
    let mut plain_sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let (plain_m, plain_log) = simulate_with_faults(&mut plain_sys, &model, &wl, &inj, &retry);
    let mut obs_sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let mut rec = Recorder::disabled();
    let (obs_m, obs_log) = simulate_observed(
        &mut obs_sys,
        &model,
        &wl,
        Some((&inj, &retry)),
        &mut rec,
        None,
    );
    assert_eq!(plain_m, obs_m);
    assert_eq!(plain_log.to_text(), obs_log.to_text());
    assert!(rec.spans().is_empty() && rec.instants().is_empty());

    // Recording on must not perturb the simulation either: observability
    // reads the timeline, never steers it.
    let (traced_m, traced_log, _, _) = observed_run(0.2);
    assert_eq!(plain_m, traced_m, "enabled recorder changed the simulation");
    assert_eq!(plain_log.to_text(), traced_log.to_text());
}

#[test]
fn span_trees_are_well_formed() {
    for rate in [0.0, 0.2] {
        let (_, _, rec, _) = observed_run(rate);
        rec.validate_well_formed()
            .unwrap_or_else(|e| panic!("malformed trace at fault rate {rate}: {e}"));
        assert!(
            rec.spans().iter().any(|s| s.name == "decode.step"),
            "expected decode.step spans at fault rate {rate}"
        );
        assert!(
            rec.spans().iter().any(|s| s.name.starts_with("pfu.")),
            "expected offload-phase detail spans at fault rate {rate}"
        );
    }
}

#[test]
fn fault_log_and_trace_instants_agree() {
    let (_, log, rec, _) = observed_run(0.2);
    assert!(!log.to_text().is_empty(), "rate 0.2 should fire events");
    assert_eq!(
        rec.instants_matching("fault."),
        log.len(),
        "every fault-log entry must appear as exactly one trace instant"
    );

    let (_, log, rec, _) = observed_run(0.0);
    assert_eq!(log.len(), 0);
    assert_eq!(rec.instants_matching("fault."), 0);
}

#[test]
fn attribution_total_row_reconciles_with_serve_metrics() {
    for rate in [0.0, 0.2] {
        let (m, _, _, attr) = observed_run(rate);
        assert!(!attr.is_empty(), "attribution collected no samples");
        let (_, p50, p99) = attr.total_stats();
        assert_eq!(
            p50.to_bits(),
            m.p50_token_ms.to_bits(),
            "attribution p50 != reported p50 at fault rate {rate}"
        );
        assert_eq!(
            p99.to_bits(),
            m.p99_token_ms.to_bits(),
            "attribution p99 != reported p99 at fault rate {rate}"
        );
        // The mean column decomposes each token's latency exactly.
        let comp_mean: f64 = (0..8).map(|c| attr.component_stats(c).0).sum();
        let (total_mean, _, _) = attr.total_stats();
        assert!(
            (comp_mean - total_mean).abs() <= 1e-9 * total_mean.max(1.0),
            "component means {comp_mean} do not sum to total mean {total_mean}"
        );
    }
}

/// One fully-observed serving run with the lookahead pipeline on.
fn observed_lookahead_run(rate: f64) -> (ServeMetrics, FaultLog, Recorder, TokenAttribution) {
    let model = ModelConfig::llama3_8b();
    let cfg = LongSightConfig::paper_default().with_lookahead(LookaheadConfig::serving_default());
    let mut sys = LongSightSystem::new(cfg, model.clone());
    let mut rec = Recorder::enabled();
    let mut attr = TokenAttribution::new();
    let inj = FaultInjector::new(FaultProfile::scaled(rate), 11);
    let retry = RetryPolicy::serving_default();
    let faults = (rate > 0.0).then_some((&inj, &retry));
    let (metrics, log) = simulate_observed(
        &mut sys,
        &model,
        &workload(),
        faults,
        &mut rec,
        Some(&mut attr),
    );
    (metrics, log, rec, attr)
}

#[test]
fn spec_instants_agree_with_attribution_and_metrics_counts() {
    for rate in [0.0, 0.2] {
        let (m, _, rec, attr) = observed_lookahead_run(rate);
        let (hits, misses, denied) = attr.spec_counts();
        assert!(hits > 0, "rate {rate}: run speculated nothing");
        assert_eq!(
            (m.spec_hits, m.spec_misses, m.spec_denied),
            (hits, misses, denied),
            "rate {rate}: metrics and attribution disagree on resolutions"
        );
        // Every speculated token emits exactly one spec.hit or spec.miss
        // instant, and one spec.issue when its slot was granted.
        assert_eq!(
            rec.instants_matching("spec.hit"),
            hits,
            "rate {rate}: spec.hit instants != attributed hits"
        );
        assert_eq!(
            rec.instants_matching("spec.miss"),
            misses,
            "rate {rate}: spec.miss instants != attributed misses"
        );
        assert_eq!(
            rec.instants_matching("spec.issue"),
            hits + misses,
            "rate {rate}: every granted issue must resolve exactly once"
        );
    }
}

#[test]
fn spec_samples_reconstruct_the_unoverlapped_chain_bit_for_bit() {
    let (_, _, _, attr) = observed_lookahead_run(0.2);
    assert!(attr.has_spec(), "no speculated steps recorded");
    for s in attr.spec_steps() {
        // The recorded components must equal the defining subtractions with
        // the exact expression order `attribution_parts` uses — bit-for-bit,
        // so `overlap_hidden + visible + spec_miss` rebuilds the chain (plus
        // the penalty actually charged) with no float slack.
        match s.charge {
            SpecCharge::Hit => {
                assert_eq!(s.spec_miss_ns.to_bits(), 0.0f64.to_bits());
                assert_eq!(s.penalty_ns.to_bits(), 0.0f64.to_bits());
                assert_eq!(
                    s.overlap_hidden_ns.to_bits(),
                    (s.chain_ns - s.hit_visible_ns).to_bits(),
                    "hit: overlap_hidden != chain - hit_visible"
                );
            }
            SpecCharge::Miss => {
                assert_eq!(
                    s.spec_miss_ns.to_bits(),
                    ((s.serial_visible_ns - s.hit_visible_ns) + s.penalty_ns).to_bits(),
                    "miss: spec_miss != re-exposed wait + penalty"
                );
                assert_eq!(
                    s.overlap_hidden_ns.to_bits(),
                    (s.chain_ns - s.serial_visible_ns).to_bits(),
                    "miss: overlap_hidden != chain - serial_visible"
                );
            }
            SpecCharge::Denied => {
                assert_eq!(s.penalty_ns.to_bits(), 0.0f64.to_bits());
                assert_eq!(
                    s.spec_miss_ns.to_bits(),
                    (s.serial_visible_ns - s.hit_visible_ns).to_bits(),
                    "denied: spec_miss != re-exposed wait"
                );
                assert_eq!(
                    s.overlap_hidden_ns.to_bits(),
                    (s.chain_ns - s.serial_visible_ns).to_bits(),
                    "denied: overlap_hidden != chain - serial_visible"
                );
            }
        }
    }
}

#[test]
fn lookahead_attribution_total_row_reconciles_with_serve_metrics() {
    for rate in [0.0, 0.2] {
        let (m, _, _, attr) = observed_lookahead_run(rate);
        assert!(attr.has_spec(), "no speculated steps at rate {rate}");
        let (_, p50, p99) = attr.total_stats();
        assert_eq!(p50.to_bits(), m.p50_token_ms.to_bits());
        assert_eq!(p99.to_bits(), m.p99_token_ms.to_bits());
        // Every component except `overlap_hidden` joins the decomposition
        // identity; the hidden time sits outside each token's latency.
        let comp_mean: f64 = (0..OVERLAP_HIDDEN).map(|c| attr.component_stats(c).0).sum();
        let (total_mean, _, _) = attr.total_stats();
        assert!(
            (comp_mean - total_mean).abs() <= 1e-9 * total_mean.max(1.0),
            "rate {rate}: non-hidden component means {comp_mean} do not sum to {total_mean}"
        );
        assert!(
            attr.component_stats(OVERLAP_HIDDEN).0 > 0.0,
            "rate {rate}: lookahead hid nothing"
        );
    }
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let (_, _, rec, _) = observed_run(0.2);
    let trace = rec.chrome_trace_json();
    let v = json::parse(&trace).expect("exported trace must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace exported no events");
    let mut phases = (0usize, 0usize, 0usize);
    for ev in events {
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => phases.0 += 1,
            Some("i") => phases.1 += 1,
            Some("M") => phases.2 += 1,
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(phases.0 > 0, "no complete events");
    assert!(phases.1 > 0, "no instants (faults should be present)");
    assert!(phases.2 > 0, "no metadata events");

    let metrics = rec.metrics_json();
    let v = json::parse(&metrics).expect("metrics export must be valid JSON");
    assert!(v.get("counters").is_some() && v.get("gauges").is_some());
}
