//! Parallel ≡ serial equivalence — the contract of `longsight-exec`.
//!
//! Every simulation in this workspace promises bit-reproducible results
//! under a seed, at *any* worker-thread count: parallel maps collect partial
//! results in index order and all floating-point reductions fold serially.
//! These tests pin that contract on the hot paths the execution layer
//! threads through: the model forward pass with the LongSight attention
//! backend, the trace-based quality evaluation, the DReX offload timing
//! simulation, and the fault-injection schedule (whose event log must be
//! byte-identical at any worker count).

use longsight::core::{
    trace_eval, HybridConfig, ItqRotation, LongSightBackend, RotationTable, ThresholdTable,
};
use longsight::drex::{time_head_offload, time_slice_offload, DrexParams, HeadOffloadSpec};
use longsight::exec;
use longsight::model::tracegen::{generate_head_trace, TraceConfig};
use longsight::model::{corpus, perplexity, InductionParams, Model, ModelConfig, ModelWeights};
use longsight::tensor::SimRng;
use std::sync::Mutex;

/// Thread counts exercised: exact serial, a fixed pool, and whatever the
/// host hardware reports (deduplicated).
fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per thread count and returns the per-count results.
fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

#[test]
fn forward_pass_perplexity_is_bit_identical_across_thread_counts() {
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 512, &mut rng);

    let runs = across_thread_counts(|| {
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window: 128,
                sinks: 16,
                top_k: 64,
            },
            ThresholdTable::uniform(cfg.layers, cfg.kv_heads, cfg.head_dim as u32 / 2),
            RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
        );
        let r = perplexity::evaluate(&model, &text, &mut backend, 64);
        let s = backend.stats();
        (r.perplexity.to_bits(), s.scored, s.retrieved)
    });
    let (_, baseline) = runs[0];
    for (threads, got) in &runs[1..] {
        assert_eq!(
            *got, baseline,
            "forward-pass result diverged at {threads} threads"
        );
    }
}

#[test]
fn trace_eval_metrics_are_bit_identical_across_thread_counts() {
    let mut rng = SimRng::seed_from(42);
    let trace = generate_head_trace(&TraceConfig::llama_like(64, 4096), &mut rng);
    let cfg = HybridConfig {
        window: 512,
        sinks: 16,
        top_k: 256,
    };
    let rot = ItqRotation::identity(64);

    let runs = across_thread_counts(|| {
        let q = trace_eval::evaluate_trace(&trace, &rot, &cfg, 20);
        (
            q.topk_recall.to_bits(),
            q.ground_truth_recall.to_bits(),
            q.output_rel_err.to_bits(),
            q.stats.scored,
            q.stats.retrieved,
        )
    });
    let (_, baseline) = runs[0];
    for (threads, got) in &runs[1..] {
        assert_eq!(
            *got, baseline,
            "trace-eval metrics diverged at {threads} threads"
        );
    }
}

#[test]
fn fault_schedule_is_bit_identical_across_thread_counts() {
    use longsight::faults::{FaultInjector, FaultProfile, RetryPolicy};
    use longsight::system::serving::{simulate_with_faults, WorkloadConfig};
    use longsight::system::{LongSightConfig, LongSightSystem};

    let model = ModelConfig::llama3_8b();
    let runs = across_thread_counts(|| {
        // Step-cost-level faults: stragglers, link replays, deadline retries.
        let cfg = LongSightConfig::paper_default().with_faults(FaultProfile::scaled(0.2), 11);
        let sys = LongSightSystem::new(cfg, model.clone());
        let layer = sys.drex_layer_faulty(8, 131_072);

        // Token-level faults through the closed-loop serving simulation.
        let mut serve_sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        let workload = WorkloadConfig {
            duration_s: 3.0,
            ..WorkloadConfig::long_context_chat()
        };
        let inj = FaultInjector::new(FaultProfile::scaled(0.2), 11);
        let (metrics, log) = simulate_with_faults(
            &mut serve_sys,
            &model,
            &workload,
            &inj,
            &RetryPolicy::serving_default(),
        );
        (
            layer.log.to_text(),
            layer.layer_ns.to_bits(),
            log.to_text(),
            metrics,
        )
    });
    let (_, baseline) = &runs[0];
    assert!(
        !baseline.0.is_empty(),
        "fault schedule should fire events at rate 0.2"
    );
    for (threads, got) in &runs[1..] {
        assert_eq!(
            got, baseline,
            "fault schedule or metrics diverged at {threads} threads"
        );
    }
}

#[test]
fn packed_scan_matches_per_key_reference_across_thread_counts() {
    use longsight::model::{attend_over_indices, AttentionBackend, AttentionRequest, HeadKv};
    use longsight::tensor::{vecops, SignBits, TopK};

    // A serial per-key reference of the hybrid filter→score→rank pipeline,
    // written against `scf_pass` semantics (`concordance >= threshold`) with
    // heap-allocated per-key SignBits — the layout the packed arena replaced.
    // The backend must reproduce it bit-for-bit at every thread count.
    let dim = 24;
    let n = 9_000; // several 4096-key scan chunks and many 128-key blocks
    let window = 256;
    let sinks = 16;
    let top_k = 96;
    let threshold = 12u32;
    let mut rng = SimRng::seed_from(7);
    let mut history = HeadKv::new(dim);
    for _ in 0..n {
        let k = rng.normal_vec(dim);
        let v = rng.normal_vec(dim);
        history.push(&k, &v);
    }
    let queries = vec![rng.normal_vec(dim), rng.normal_vec(dim)];
    let req = AttentionRequest {
        layer: 0,
        kv_head: 0,
        position: n - 1,
        queries: &queries,
        history: &history,
        scale: 0.25,
    };

    let window_start = n - window;
    let sinks_end = sinks;
    let key_signs: Vec<SignBits> = (0..window_start)
        .map(|i| SignBits::from_slice(history.keys().get(i)))
        .collect();
    let reference: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            let q_signs = SignBits::from_slice(q);
            let mut top = TopK::new(top_k);
            for (i, k_signs) in key_signs.iter().enumerate().skip(sinks_end) {
                if q_signs.concordance(k_signs) >= threshold {
                    top.push(vecops::dot(q, history.keys().get(i)), i);
                }
            }
            let mut candidates: Vec<usize> = (0..sinks_end).collect();
            candidates.extend(top.into_sorted_vec().iter().map(|s| s.index));
            candidates.extend(window_start..n);
            candidates.sort_unstable();
            attend_over_indices(q, &history, &candidates, req.scale)
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();

    let runs = across_thread_counts(|| {
        let mut backend = LongSightBackend::new(
            HybridConfig {
                window,
                sinks,
                top_k,
            },
            ThresholdTable::uniform(1, 1, threshold),
            RotationTable::identity(1, 1, dim),
        );
        let out = backend.attend(&req);
        let bits: Vec<Vec<u32>> = out
            .iter()
            .map(|o| o.iter().map(|x| x.to_bits()).collect())
            .collect();
        (bits, backend.stats().scored, backend.stats().retrieved)
    });
    for (threads, (bits, _, _)) in &runs {
        assert_eq!(
            *bits, reference,
            "packed scan diverged from the per-key reference at {threads} threads"
        );
    }
    let (_, baseline) = &runs[0];
    for (threads, got) in &runs[1..] {
        assert_eq!(
            got, baseline,
            "packed scan stats diverged at {threads} threads"
        );
    }
}

#[test]
fn offload_timing_is_bit_identical_across_thread_counts() {
    let params = DrexParams::paper();
    // Several slices' worth of keys so the per-slice parallel map engages.
    let spec = HeadOffloadSpec {
        context_len: 300_000,
        head_dim: 128,
        queries: 4,
        k: 1024,
        survivors: 15_000,
    };

    let runs = across_thread_counts(|| {
        let head = time_head_offload(&params, &spec, 99);
        let slice = time_slice_offload(&params, &spec, 60_000, 3_000, 17);
        (head, slice)
    });
    let (_, baseline) = runs[0];
    for (threads, got) in &runs[1..] {
        assert_eq!(
            *got, baseline,
            "offload timing diverged at {threads} threads"
        );
    }
}

#[test]
fn lookahead_serving_is_bit_identical_across_thread_counts() {
    use longsight::obs::Recorder;
    use longsight::sched::{RouterPolicy, SchedPolicy, SloMix};
    use longsight::system::serving::{
        simulate_fleet, simulate_observed, SchedOptions, WorkloadConfig,
    };
    use longsight::system::{LongSightConfig, LongSightSystem, LookaheadConfig, ServingSystem};

    let runs = across_thread_counts(|| {
        // Traced single-system run with speculation on: metrics, trace
        // bytes, and the spec counters must not depend on the worker count.
        let model = ModelConfig::llama3_8b();
        let cfg =
            LongSightConfig::paper_default().with_lookahead(LookaheadConfig::serving_default());
        let mut sys = LongSightSystem::new(cfg, model.clone());
        let wl = WorkloadConfig {
            duration_s: 3.0,
            ..WorkloadConfig::long_context_chat()
        };
        let mut rec = Recorder::enabled();
        let (m, _) = simulate_observed(&mut sys, &model, &wl, None, &mut rec, None);
        assert!(m.spec_hits > 0, "run speculated nothing");

        // Two-replica fleet with speculating replicas: the router's
        // placement log rides on the same determinism contract.
        let fleet_model = ModelConfig::llama3_1b();
        let mut fleet: Vec<Box<dyn ServingSystem>> = (0..2)
            .map(|_| {
                let cfg = LongSightConfig::paper_default()
                    .with_lookahead(LookaheadConfig::serving_default());
                Box::new(LongSightSystem::new(cfg, fleet_model.clone())) as Box<dyn ServingSystem>
            })
            .collect();
        let opts = SchedOptions {
            policy: SchedPolicy::SloAware,
            mix: SloMix {
                interactive: 0.2,
                batch: 0.2,
                best_effort: 0.6,
            },
            page_tokens: 1024,
            prefill_chunk_tokens: 128,
            prefill_slots: 1,
            hbm_watermark: 0.01,
        };
        let fleet_wl = WorkloadConfig {
            arrivals_per_s: 12.0,
            context_tokens: (16_384, 32_768),
            output_tokens: (32, 128),
            duration_s: 4.0,
            seed: 11,
        };
        let (fm, rep) = simulate_fleet(
            &mut fleet,
            &fleet_model,
            &fleet_wl,
            &opts,
            RouterPolicy::JsqSpillover,
            &mut Recorder::disabled(),
        );
        (
            m,
            rec.chrome_trace_json(),
            rec.metrics_json(),
            fm,
            rep.placement_log(),
        )
    });
    let (_, baseline) = &runs[0];
    assert!(!baseline.4.is_empty(), "router must place something");
    for (threads, got) in &runs[1..] {
        assert_eq!(
            got, baseline,
            "lookahead serving diverged at {threads} threads"
        );
    }
}
