//! Cross-crate serving-simulation invariants: the qualitative behaviours the
//! paper's Figs 7–9 rest on.

use longsight::gpu::{DataParallelGpus, GpuSpec};
use longsight::model::ModelConfig;
use longsight::system::{
    AttAccSystem, GpuOnlySystem, Infeasible, LongSightConfig, LongSightSystem, ServingSystem,
    SlidingWindowSystem,
};

fn longsight(model: ModelConfig) -> LongSightSystem {
    LongSightSystem::new(LongSightConfig::paper_default(), model)
}

#[test]
fn latency_grows_with_context_for_every_system() {
    let model = ModelConfig::llama3_8b();
    let mut systems: Vec<Box<dyn ServingSystem>> = vec![
        Box::new(GpuOnlySystem {
            gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
            model: model.clone(),
        }),
        Box::new(AttAccSystem::h100_pim(model.clone())),
        Box::new(longsight(model.clone())),
    ];
    for sys in &mut systems {
        let short = sys.evaluate(1, 32_768).expect("32K fits everywhere");
        let long = sys.evaluate(1, 131_072).expect("128K fits for one user");
        assert!(
            long.step_ns >= short.step_ns,
            "{}: latency must not shrink with context ({} -> {})",
            sys.name(),
            short.step_ns,
            long.step_ns
        );
    }
    // Sliding window is the exception: context-independent by design.
    let mut sw = SlidingWindowSystem {
        gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
        model,
        window: 1024,
        sinks: 16,
    };
    let a = sw.evaluate(1, 32_768).unwrap();
    let b = sw.evaluate(1, 131_072).unwrap();
    assert!((a.step_ns - b.step_ns).abs() < 1e-6);
}

#[test]
fn longsight_latency_grows_sublinearly_with_context() {
    // §9.1: "DReX offload time scales sub-linearly with context length".
    let mut ls = longsight(ModelConfig::llama3_8b());
    let a = ls.evaluate(1, 65_536).unwrap();
    let b = ls.evaluate(1, 524_288).unwrap();
    assert!(
        b.step_ns < 8.0 * a.step_ns,
        "8x context should cost < 8x latency: {} -> {}",
        a.step_ns,
        b.step_ns
    );
}

#[test]
fn smaller_k_means_lower_latency() {
    let model = ModelConfig::llama3_8b();
    let mut small = LongSightConfig::paper_default();
    small.hybrid.top_k = 128;
    let mut big = LongSightConfig::paper_default();
    big.hybrid.top_k = 1024;
    let a = LongSightSystem::new(small, model.clone())
        .evaluate(4, 131_072)
        .unwrap();
    let b = LongSightSystem::new(big, model)
        .evaluate(4, 131_072)
        .unwrap();
    assert!(
        a.step_ns <= b.step_ns,
        "k=128 must not be slower than k=1024 ({} vs {})",
        a.step_ns,
        b.step_ns
    );
}

#[test]
fn higher_filter_ratio_means_lower_latency() {
    let model = ModelConfig::llama3_8b();
    let mut coarse = LongSightConfig::paper_default();
    coarse.filter_ratio = 5.0;
    let mut fine = LongSightConfig::paper_default();
    fine.filter_ratio = 40.0;
    let slow = LongSightSystem::new(coarse, model.clone())
        .evaluate(8, 262_144)
        .unwrap();
    let fast = LongSightSystem::new(fine, model)
        .evaluate(8, 262_144)
        .unwrap();
    assert!(
        fast.step_ns < slow.step_ns,
        "a 40x filter ratio must beat 5x ({} vs {})",
        fast.step_ns,
        slow.step_ns
    );
}

#[test]
fn infeasibility_reasons_are_accurate() {
    let model = ModelConfig::llama3_8b();
    // One GPU cannot hold 1M dense KV.
    let mut dense = GpuOnlySystem {
        gpus: DataParallelGpus::new(GpuSpec::h100_sxm(), 1),
        model: model.clone(),
    };
    assert_eq!(
        dense.evaluate(1, 1 << 20).unwrap_err(),
        Infeasible::GpuMemory
    );
    // LongSight rejects batches beyond the DCC queue depth.
    let mut ls = longsight(model.clone());
    assert_eq!(
        ls.evaluate(513, 32_768).unwrap_err(),
        Infeasible::QueueDepth
    );
    // And batches whose contexts exceed DReX memory.
    let over = ls.drex_max_users(1 << 20) + 1;
    if over <= 512 {
        assert_eq!(
            ls.evaluate(over, 1 << 20).unwrap_err(),
            Infeasible::DrexMemory
        );
    }
}

#[test]
fn throughput_increases_then_saturates_with_users() {
    let mut ls = longsight(ModelConfig::llama3_1b());
    let ctx = 131_072;
    let mut last_tput = 0.0;
    let cap = ls.max_users(ctx);
    let mut grew = false;
    for users in [1usize, 4, 16, 64] {
        if users > cap {
            break;
        }
        let r = ls.evaluate(users, ctx).unwrap();
        if r.throughput_tps > last_tput * 1.5 {
            grew = true;
        }
        assert!(
            r.throughput_tps >= last_tput * 0.75,
            "throughput should not collapse when adding users"
        );
        last_tput = r.throughput_tps;
    }
    assert!(
        grew,
        "batching must raise throughput somewhere in the sweep"
    );
}
