//! The paper's two dataset regimes (§8.1.1): Project-Gutenberg-like long
//! contiguous documents vs. concatenated-Wiki2-like short passages. The value
//! of long-range retrieval should differ between them: passage boundaries
//! destroy cross-passage motif reuse, so window-only attention loses less on
//! the wiki2-like regime than on the long-book regime.

use longsight::model::{
    corpus, perplexity, DenseBackend, InductionParams, Model, ModelConfig, ModelWeights,
    SlidingWindowBackend,
};
use longsight::tensor::SimRng;

const CTX: usize = 1024;
const WINDOW: usize = 128;
const SKIP: usize = 64;

fn window_penalty(kind: corpus::CorpusKind, passage_len: usize) -> f64 {
    let cfg = ModelConfig::tiny();
    // Seed chosen so the synthetic regimes show their intended contrast
    // with margin (the corpus/weight streams are pinned by SimRng's
    // in-repo generator; see crates/tensor/src/rng.rs golden tests).
    let mut rng = SimRng::seed_from(17);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let corpus_cfg = corpus::CorpusConfig {
        kind,
        passage_len,
        ..corpus::CorpusConfig::long_book(cfg.vocab)
    };
    let text = corpus::generate(&corpus_cfg, CTX, &mut rng);
    let dense = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), SKIP);
    let windowed = perplexity::evaluate(
        &model,
        &text,
        &mut SlidingWindowBackend::new(WINDOW, 16),
        SKIP,
    );
    windowed.relative_increase_over(&dense)
}

#[test]
fn long_books_punish_window_attention_more_than_concat_passages() {
    let pg = window_penalty(corpus::CorpusKind::LongBook, 0);
    // Passages barely longer than the window: almost all motif reuse is
    // window-local.
    let wiki2 = window_penalty(corpus::CorpusKind::ConcatPassages, 160);
    assert!(
        pg > wiki2,
        "window-only attention should lose more on long contiguous documents: \
         pg penalty {pg:.3} vs wiki2 penalty {wiki2:.3}"
    );
    assert!(
        pg > 0.02,
        "the long-book regime must show a real penalty ({pg:.3})"
    );
}

#[test]
fn both_regimes_have_positive_long_range_value() {
    // Even concatenated passages retain *some* within-passage long-range
    // structure beyond a 128-token window.
    let wiki2 = window_penalty(corpus::CorpusKind::ConcatPassages, 512);
    assert!(
        wiki2 > 0.0,
        "512-token passages still exceed the window; penalty {wiki2:.3}"
    );
}
