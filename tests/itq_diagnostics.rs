//! Diagnostic: concordance separation (matching vs background keys) under
//! raw signs vs the trained ITQ rotation. Run with:
//!
//! ```text
//! cargo test --test itq_diagnostics -- --ignored --nocapture
//! ```

use longsight_core::{training, ItqConfig, ItqRotation, RotationTable};
use longsight_model::{
    corpus, AttentionBackend, AttentionRequest, DenseBackend, InductionParams, Model, ModelConfig,
    ModelWeights,
};
use longsight_tensor::{vecops, SimRng};

struct Collect {
    inner: DenseBackend,
    layer: usize,
    kv_head: usize,
    queries: Vec<(usize, Vec<f32>)>,
}

impl AttentionBackend for Collect {
    fn attend(&mut self, req: &AttentionRequest<'_>) -> Vec<Vec<f32>> {
        if req.layer == self.layer && req.kv_head == self.kv_head {
            self.queries.push((req.position, req.queries[0].clone()));
        }
        self.inner.attend(req)
    }
    fn label(&self) -> String {
        "collect".into()
    }
}

#[test]
#[ignore = "manual diagnostic"]
fn concordance_separation_raw_vs_itq() {
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 768, &mut rng);

    let mut cache = model.new_cache();
    let mut col = Collect {
        inner: DenseBackend::new(),
        layer: 1,
        kv_head: 0,
        queries: Vec::new(),
    };
    for (pos, &t) in text.tokens.iter().enumerate() {
        model.forward(t, pos, &mut cache, &mut col);
    }
    let keys = cache.head(1, 0).keys();

    let calib: Vec<u32> = text.tokens[..512].to_vec();
    let rotations = training::train_rotations(
        &model,
        &calib,
        &ItqConfig {
            iterations: 25,
            seed: 3,
        },
    );
    let itq = rotations.get(1, 0).clone();
    let raw = ItqRotation::identity(cfg.head_dim);

    // Keys-only ITQ variant for comparison.
    let keys_only = {
        let mut data = Vec::new();
        for k in keys.iter() {
            let n = vecops::l2_norm(k);
            data.extend(k.iter().map(|x| x / n.max(1e-9)));
        }
        let m = longsight_tensor::Matrix::from_vec(keys.len(), cfg.head_dim, data);
        ItqRotation::train(
            &m,
            &ItqConfig {
                iterations: 25,
                seed: 7,
            },
        )
    };

    // Post-rotation key sign imbalance.
    for (name, rot) in [("raw", &raw), ("itq", &itq), ("itq-keys", &keys_only)] {
        let mut mean_imb = 0.0;
        let mut worst: f64 = 0.0;
        for dim in 0..cfg.head_dim {
            let neg = keys.iter().filter(|k| rot.apply(k)[dim] < 0.0).count();
            let imb = (neg as f64 / keys.len() as f64 - 0.5).abs();
            mean_imb += imb / cfg.head_dim as f64;
            worst = worst.max(imb);
        }
        println!("{name}: key sign imbalance mean {mean_imb:.3} worst {worst:.3}");
    }

    // "Match" = top-2 scoring keys for queries at *predictable* positions
    // (true motif retrievals); background = everything else at those
    // positions.
    let report = |name: &str, rot: &ItqRotation| {
        let mut match_conc = Vec::new();
        let mut bg_conc = Vec::new();
        for (pos, q) in col
            .queries
            .iter()
            .filter(|(p, _)| *p > 300 && text.predictable.get(*p + 1).copied().unwrap_or(false))
        {
            let scores: Vec<f32> = (0..*pos).map(|i| vecops::dot(q, keys.get(i))).collect();
            let top = longsight_tensor::top_k_indices(&scores, 2);
            let qs = rot.signs(q);
            for i in 0..*pos {
                let c = qs.concordance(&rot.signs(keys.get(i)));
                if top.contains(&i) {
                    match_conc.push(c);
                } else {
                    bg_conc.push(c);
                }
            }
        }
        let mean = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len().max(1) as f64;
        let std = |v: &[u32], m: f64| {
            (v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len().max(1) as f64).sqrt()
        };
        bg_conc.sort_unstable();
        let m_m = mean(&match_conc);
        let m_b = mean(&bg_conc);
        let s_b = std(&bg_conc, m_b);
        let p99 = bg_conc[bg_conc.len() * 99 / 100];
        println!(
            "{name}: match mean {m_m:.1} (min {}), bg mean {m_b:.1} sd {s_b:.2} p99 {p99}, z-sep {:.2}",
            match_conc.iter().min().unwrap(),
            (m_m - m_b) / s_b
        );
    };
    report("raw", &raw);
    report("itq", &itq);
    report("itq-keys", &keys_only);
}

/// Per-head filter ratios at a fixed threshold, raw vs ITQ.
#[test]
#[ignore = "manual diagnostic"]
fn per_head_ratio_raw_vs_itq() {
    use longsight_core::{HybridConfig, LongSightBackend, ThresholdTable};
    use longsight_model::perplexity;

    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), 768, &mut rng);
    let calib: Vec<u32> = text.tokens[..512].to_vec();
    let rotations = training::train_rotations(
        &model,
        &calib,
        &ItqConfig {
            iterations: 25,
            seed: 3,
        },
    );

    for (name, rot) in [
        (
            "raw",
            RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
        ),
        ("itq", rotations),
    ] {
        for th in [18u32, 20, 22, 24] {
            let mut backend = LongSightBackend::new(
                HybridConfig {
                    window: 192,
                    sinks: 16,
                    top_k: 96,
                },
                ThresholdTable::uniform(cfg.layers, cfg.kv_heads, th),
                rot.clone(),
            );
            let r = perplexity::evaluate(&model, &text, &mut backend, 48);
            let s = backend.stats();
            let per: Vec<String> = s
                .per_head
                .iter()
                .map(|h| format!("{:.1}", h.filter_ratio()))
                .collect();
            println!(
                "{name} th{th}: ppl {:.0} agg {:.1}x per-head [{}]",
                r.perplexity,
                s.filter_ratio_nonwindow(),
                per.join(", ")
            );
        }
    }
}

/// ITQ vs raw sign filtering on the long-context trace generator (the
/// vehicle for Fig 3's long-context points).
#[test]
#[ignore = "manual diagnostic"]
fn trace_itq_vs_raw() {
    use longsight_core::{trace_eval, HybridConfig};
    use longsight_model::tracegen::{generate_head_trace, TraceConfig};
    use longsight_tensor::Matrix;

    let mut rng = SimRng::seed_from(7);
    let trace = generate_head_trace(&TraceConfig::llama_like(128, 32_768), &mut rng);

    // Train ITQ on the first 1024 keys (normalized).
    let n_train = 1024;
    let mut data = Vec::new();
    for i in 0..n_train {
        let k = trace.keys.get(i);
        let norm = vecops::l2_norm(k);
        data.extend(k.iter().map(|x| x / norm.max(1e-9)));
    }
    let itq = ItqRotation::train(
        &Matrix::from_vec(n_train, 128, data),
        &ItqConfig {
            iterations: 30,
            seed: 9,
        },
    );
    let raw = ItqRotation::identity(128);

    let cfg = HybridConfig {
        window: 1024,
        sinks: 16,
        top_k: 1024,
    };
    for (name, rot) in [("raw", &raw), ("itq", &itq)] {
        // Highest threshold with output error <= 5% and good recall.
        let mut best = (0.0f64, 0u32, 0.0f64);
        for th in (0..=128).step_by(2) {
            let q = trace_eval::evaluate_trace(&trace, rot, &cfg, th);
            if q.output_rel_err <= 0.05 {
                let fr = q.stats.filter_ratio_nonwindow();
                if fr > best.0 {
                    best = (fr, th, q.topk_recall);
                }
            } else {
                break;
            }
        }
        println!(
            "{name}: best {:.1}x @th{} (topk recall {:.2})",
            best.0, best.1, best.2
        );
    }
}
