//! The simulated DReX device must implement *exactly* the retrieval the
//! reference algorithm defines: same SCF decisions, same scores (at BF16 key
//! precision), same top-k — per query, per head.

use longsight::core::{scf_pass, ItqConfig, ItqRotation, RotationTable, ThresholdTable};
use longsight::cxl::CxlLink;
use longsight::dram::Geometry;
use longsight::drex::{DrexDevice, DrexParams, RequestDescriptor};
use longsight::tensor::{quantize_bf16_in_place, vecops, SimRng, TopK};

const LAYERS: usize = 2;
const KV_HEADS: usize = 3;
const DIM: usize = 32;

fn build_device(thresholds: ThresholdTable, rotations: RotationTable) -> DrexDevice {
    DrexDevice::new(
        DrexParams::paper(),
        CxlLink::pcie5_x16(),
        Geometry::drex(),
        thresholds,
        rotations,
        DIM,
    )
}

/// Reference pipeline: BF16-round keys, rotate for signs, SCF, score, top-k.
fn reference_topk(
    keys: &[Vec<f32>],
    q: &[f32],
    rotation: &ItqRotation,
    threshold: u32,
    k: usize,
) -> Vec<usize> {
    let q_signs = rotation.signs(q);
    let mut top = TopK::new(k);
    for (i, key) in keys.iter().enumerate() {
        let mut kq = key.clone();
        quantize_bf16_in_place(&mut kq);
        if scf_pass(&q_signs, &rotation.signs(&kq), threshold) {
            top.push(vecops::dot(q, &kq), i);
        }
    }
    top.into_sorted_vec().into_iter().map(|s| s.index).collect()
}

#[test]
fn device_matches_reference_for_all_heads_and_queries() {
    let mut rng = SimRng::seed_from(99);
    // Per-head ITQ rotations (random orthogonal stand-ins) and varied
    // thresholds exercise the full table indexing.
    let rotations = RotationTable::from_fn(LAYERS, KV_HEADS, |l, h| {
        ItqRotation::train(
            &longsight::tensor::Matrix::random_gaussian(
                64,
                DIM,
                &mut SimRng::seed_from((l * 7 + h) as u64),
            ),
            &ItqConfig {
                iterations: 8,
                seed: (l * 31 + h) as u64,
            },
        )
    });
    let mut thresholds = ThresholdTable::zeros(LAYERS, KV_HEADS);
    for l in 0..LAYERS {
        for h in 0..KV_HEADS {
            thresholds.set(l, h, 10 + (l * KV_HEADS + h) as u32 * 2);
        }
    }
    let mut dev = build_device(thresholds.clone(), rotations.clone());
    let user = dev.register_user();

    // Populate with per-head distinct keys.
    let n = 400usize;
    let mut all_keys = vec![vec![Vec::new(); KV_HEADS]; LAYERS];
    for (l, layer_keys) in all_keys.iter_mut().enumerate() {
        for (h, head_keys) in layer_keys.iter_mut().enumerate() {
            let keys: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(DIM)).collect();
            let vals: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_vec(DIM)).collect();
            dev.write_kv_block(user, l, h, &keys, &vals).unwrap();
            *head_keys = keys;
        }
    }

    #[allow(clippy::needless_range_loop)]
    for layer in 0..LAYERS {
        let queries: Vec<Vec<Vec<f32>>> = (0..KV_HEADS)
            .map(|_| (0..2).map(|_| rng.normal_vec(DIM)).collect())
            .collect();
        let req = RequestDescriptor {
            user,
            layer: layer as u32,
            queries: queries.clone(),
        };
        let k = 16;
        let out = dev.offload(&req, k, 0.0).unwrap();
        for h in 0..KV_HEADS {
            let rotation = rotations.get(layer, h);
            let threshold = thresholds.get(layer, h);
            for (qi, q) in queries[h].iter().enumerate() {
                let want = reference_topk(&all_keys[layer][h], q, rotation, threshold, k);
                let got: Vec<usize> = out.response.hits[h][qi].iter().map(|x| x.index).collect();
                assert_eq!(
                    got, want,
                    "device/reference divergence at layer {layer}, head {h}, query {qi}"
                );
            }
        }
    }
}

#[test]
fn device_timing_is_monotone_in_load() {
    let mut rng = SimRng::seed_from(100);
    let mut dev = build_device(
        ThresholdTable::zeros(1, 2),
        RotationTable::identity(1, 2, DIM),
    );
    let user = dev.register_user();
    for h in 0..2 {
        let keys: Vec<Vec<f32>> = (0..512).map(|_| rng.normal_vec(DIM)).collect();
        let vals = keys.clone();
        dev.write_kv_block(user, 0, h, &keys, &vals).unwrap();
    }
    let q: Vec<Vec<Vec<f32>>> = (0..2).map(|_| vec![rng.normal_vec(DIM)]).collect();
    let req = RequestDescriptor {
        user,
        layer: 0,
        queries: q,
    };
    // Back-to-back offloads at the same arrival queue on the same NMAs.
    let t1 = dev.offload(&req, 32, 0.0).unwrap().timing;
    let t2 = dev.offload(&req, 32, 0.0).unwrap().timing;
    assert!(t2.device_done_ns >= t1.device_done_ns);
}
