//! Fleet contract — multi-replica sharding behind the deterministic router.
//!
//! Three promises are pinned here:
//!
//! 1. **Single-replica equivalence.** `simulate_fleet` over one system is
//!    bit-identical to `simulate_scheduled` — same metrics, same report —
//!    so the fleet layer costs nothing when there is no fleet.
//! 2. **Deterministic placement.** The router's placement log is a pure
//!    function of `(seed, arrival index, load)`: byte-identical at 1, 4,
//!    and hardware worker-thread counts, for both policies.
//! 3. **Conservation.** The cross-replica audit passes: every arrival is
//!    placed exactly once, each replica's arrivals match its placements,
//!    and no replica leaks pages.

use longsight::exec;
use longsight::model::ModelConfig;
use longsight::obs::Recorder;
use longsight::sched::{RouterPolicy, SchedPolicy, SloMix};
use longsight::system::serving::{
    simulate_fleet, simulate_scheduled, SchedOptions, WorkloadConfig,
};
use longsight::system::{LongSightConfig, LongSightSystem, ServingSystem};
use std::sync::Mutex;

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

/// A best-effort-heavy mix under a tight watermark: the load point where
/// routing policy matters (plenty of scavenger traffic to spill).
fn skewed_opts() -> SchedOptions {
    SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix {
            interactive: 0.2,
            batch: 0.2,
            best_effort: 0.6,
        },
        page_tokens: 1024,
        prefill_chunk_tokens: 128,
        prefill_slots: 1,
        hbm_watermark: 0.01,
    }
}

fn workload(rate: f64) -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_s: rate,
        context_tokens: (16_384, 32_768),
        output_tokens: (32, 128),
        duration_s: 4.0,
        seed: 11,
    }
}

fn fleet_of(n: usize) -> Vec<Box<dyn ServingSystem>> {
    let model = ModelConfig::llama3_1b();
    (0..n)
        .map(|_| {
            Box::new(LongSightSystem::new(
                LongSightConfig::paper_default(),
                model.clone(),
            )) as Box<dyn ServingSystem>
        })
        .collect()
}

#[test]
fn single_replica_fleet_is_bit_identical_to_simulate_scheduled() {
    let model = ModelConfig::llama3_1b();
    let wl = workload(8.0);
    let opts = skewed_opts();
    let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let (m_direct, rep_direct, _) = simulate_scheduled(
        &mut sys,
        &model,
        &wl,
        &opts,
        None,
        &mut Recorder::disabled(),
        None,
    );
    let mut fleet = fleet_of(1);
    let (m_fleet, rep_fleet) = simulate_fleet(
        &mut fleet,
        &model,
        &wl,
        &opts,
        RouterPolicy::JsqSpillover,
        &mut Recorder::disabled(),
    );
    assert_eq!(m_direct, m_fleet, "single-replica fleet must cost nothing");
    assert_eq!(rep_direct, rep_fleet.replicas[0]);
    assert_eq!(rep_fleet.per_class, rep_direct.per_class);
    assert_eq!(rep_fleet.audit_violation, None);
    assert_eq!(rep_fleet.placements.len(), rep_fleet.total_arrived());
}

#[test]
fn placement_log_is_byte_identical_at_any_thread_count() {
    for policy in [RouterPolicy::JsqSpillover, RouterPolicy::RoundRobin] {
        let runs = across_thread_counts(|| {
            let model = ModelConfig::llama3_1b();
            let mut fleet = fleet_of(4);
            let (m, rep) = simulate_fleet(
                &mut fleet,
                &model,
                &workload(12.0),
                &skewed_opts(),
                policy,
                &mut Recorder::disabled(),
            );
            (rep.placement_log(), m.to_text(), rep)
        });
        for (t, (_, _, rep)) in &runs {
            assert_eq!(
                rep.audit_violation,
                None,
                "{} audit failed at {t} threads",
                policy.name()
            );
        }
        let (_, (log0, text0, rep0)) = &runs[0];
        assert!(!log0.is_empty(), "router must place something");
        for (t, (log, text, rep)) in &runs[1..] {
            assert_eq!(
                log,
                log0,
                "{} placement diverged at {t} threads",
                policy.name()
            );
            assert_eq!(text, text0, "metrics diverged at {t} threads");
            assert_eq!(rep, rep0, "fleet report diverged at {t} threads");
        }
    }
}

#[test]
fn fleet_conserves_arrivals_and_spreads_load() {
    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(4);
    let (m, rep) = simulate_fleet(
        &mut fleet,
        &model,
        &workload(12.0),
        &skewed_opts(),
        RouterPolicy::JsqSpillover,
        &mut Recorder::disabled(),
    );
    assert_eq!(rep.audit_violation, None);
    assert_eq!(rep.placements.len(), rep.total_arrived());
    // Every replica serves part of the load under JSQ.
    for i in 0..4 {
        assert!(
            rep.placements.iter().any(|&(_, r)| r == i),
            "replica {i} never used"
        );
    }
    // Fleet-wide conservation: everything placed either completed, was
    // rejected, is still in flight, or waits in a queue.
    let done: usize = rep.per_class.iter().map(|c| c.completed).sum();
    assert_eq!(m.completed, done);
    assert!(done > 0, "the fleet must finish work: {m:?}");
    // No replica exceeded its own watermark.
    for (i, r) in rep.replicas.iter().enumerate() {
        assert!(
            r.pages.peak_hbm <= r.pages.hbm_limit,
            "replica {i} broke its watermark"
        );
    }
}

#[test]
fn routers_disagree_under_skew() {
    // Sanity that the two policies are actually different controllers:
    // same offered load, different placement logs.
    let model = ModelConfig::llama3_1b();
    let run = |policy| {
        let mut fleet = fleet_of(2);
        let (_, rep) = simulate_fleet(
            &mut fleet,
            &model,
            &workload(12.0),
            &skewed_opts(),
            policy,
            &mut Recorder::disabled(),
        );
        rep.placement_log()
    };
    assert_ne!(
        run(RouterPolicy::JsqSpillover),
        run(RouterPolicy::RoundRobin)
    );
}
