//! Property tests for the lookahead DReX pipeline, on the in-repo
//! [`check`](longsight::tensor::check) runner.
//!
//! * **No free lunch** — speculation can only hide the offload chain, never
//!   invent time: a lookahead-on step is never cheaper than the clean
//!   synchronous step minus the full unoverlapped chain, and never slower
//!   than the synchronous step itself.
//! * **Degenerate miss rate** — with every speculation stale
//!   (`miss_rate == 1.0`) and a zero re-filter penalty, the closed-loop
//!   serving timing is exactly the synchronous timing; only the miss
//!   counters differ.
//! * **Bounded pool** — the slot pool's occupancy and high-water mark never
//!   exceed its capacity over arbitrary issue/release sequences, and the
//!   issue/deny counters partition the attempts.

use longsight::drex::SpecSlotPool;
use longsight::model::ModelConfig;
use longsight::system::serving::{simulate, WorkloadConfig};
use longsight::system::{LongSightConfig, LongSightSystem, LookaheadConfig, ServingSystem};
use longsight::tensor::check::run_cases;
use longsight::tensor::{prop_ensure, prop_ensure_eq};

#[test]
fn lookahead_is_never_cheaper_than_sync_minus_the_hidden_chain() {
    run_cases(
        "lookahead_is_never_cheaper_than_sync_minus_the_hidden_chain",
        24,
        |g| {
            let model = if g.bool() {
                ModelConfig::llama3_1b()
            } else {
                ModelConfig::llama3_8b()
            };
            let users = g.usize_in(1, 17);
            let context = g.usize_in(8_192, 131_073);
            let mut sync = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
            let mut spec = LongSightSystem::new(
                LongSightConfig::paper_default().with_lookahead(LookaheadConfig::serving_default()),
                model,
            );
            let (off, on) = match (sync.evaluate(users, context), spec.evaluate(users, context)) {
                (Ok(off), Ok(on)) => (off, on),
                // Infeasible points (KV overflow) must be infeasible on both.
                (Err(_), Err(_)) => return Ok(()),
                _ => return Err(format!("feasibility diverged at {users}x{context}")),
            };
            let s = on
                .spec
                .ok_or_else(|| "lookahead-on report lost its SpecStep".to_string())?;
            prop_ensure_eq!(
                s.serial_step_ns.to_bits(),
                off.step_ns.to_bits(),
                "SpecStep.serial_step_ns must be the lookahead-off step bits"
            );
            prop_ensure!(
                on.step_ns >= off.step_ns - s.chain_ns - 1e-6,
                "hit step {} cheaper than sync {} minus the whole chain {}",
                on.step_ns,
                off.step_ns,
                s.chain_ns
            );
            prop_ensure!(
                on.step_ns <= off.step_ns + 1e-6,
                "hit step {} slower than the synchronous step {}",
                on.step_ns,
                off.step_ns
            );
            prop_ensure!(
                s.hit_visible_ns <= s.serial_visible_ns + 1e-6,
                "hit path exposes more wait ({}) than the sync path ({})",
                s.hit_visible_ns,
                s.serial_visible_ns
            );
            Ok(())
        },
    );
}

#[test]
fn miss_rate_one_with_zero_penalty_degenerates_to_serial_timing() {
    run_cases(
        "miss_rate_one_with_zero_penalty_degenerates_to_serial_timing",
        12,
        |g| {
            let model = ModelConfig::llama3_1b();
            let wl = WorkloadConfig {
                arrivals_per_s: g.f64_in(3.0, 8.0),
                context_tokens: (16_384, 32_768),
                output_tokens: (16, 64),
                duration_s: 3.0,
                seed: g.u64_in(1, 1 << 20),
            };
            let mut sync = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
            let off = simulate(&mut sync, &model, &wl);
            let all_miss = LookaheadConfig {
                miss_rate: 1.0,
                refilter_penalty_ns: 0.0,
                slots: 64,
                ..LookaheadConfig::serving_default()
            };
            let mut spec = LongSightSystem::new(
                LongSightConfig::paper_default().with_lookahead(all_miss),
                model.clone(),
            );
            let on = simulate(&mut spec, &model, &wl);
            prop_ensure_eq!(on.spec_hits, 0, "miss rate 1.0 cannot land a hit");
            prop_ensure!(on.spec_misses > 0, "run generated no speculated steps");
            // Everything except the speculation counters degenerates to the
            // synchronous run, bit for bit.
            let strip = |m: &longsight::system::serving::ServeMetrics| {
                let mut m = m.clone();
                m.spec_hits = 0;
                m.spec_misses = 0;
                m.spec_denied = 0;
                m
            };
            prop_ensure_eq!(
                strip(&on),
                strip(&off),
                "all-miss zero-penalty timing diverged from the synchronous run"
            );
            Ok(())
        },
    );
}

#[test]
fn slot_pool_occupancy_never_exceeds_its_bound() {
    run_cases("slot_pool_occupancy_never_exceeds_its_bound", 64, |g| {
        let slots = g.usize_in(1, 48);
        let mut pool = SpecSlotPool::new(slots);
        let mut now = 0.0f64;
        let steps = g.usize_in(1, 200);
        let mut attempts = 0u64;
        for _ in 0..steps {
            now += g.f64_in(0.0, 2.0e6);
            pool.release_until(now);
            for _ in 0..g.usize_in(0, 8) {
                pool.try_issue(now, g.f64_in(0.0, 10.0e6));
                attempts += 1;
                prop_ensure!(
                    pool.occupancy() <= pool.capacity(),
                    "occupancy {} exceeded the {}-slot bound",
                    pool.occupancy(),
                    pool.capacity()
                );
            }
        }
        prop_ensure!(
            pool.peak_occupancy() <= pool.capacity(),
            "peak {} exceeded the {}-slot bound",
            pool.peak_occupancy(),
            pool.capacity()
        );
        prop_ensure_eq!(
            pool.issued() + pool.denied(),
            attempts,
            "issue/deny counters must partition the attempts"
        );
        Ok(())
    });
}
