//! End-to-end contracts of the fault-injection layer.
//!
//! * **Rate-0 identity** — a disabled injector must leave every number
//!   produced by the stack byte-identical to the fault-free path: the
//!   goldens under `results/` and the bit-identity promise of
//!   `longsight-exec` survive with faults compiled in but switched off.
//! * **Monotone degradation** — raising the fault rate can only cost
//!   capacity: the SLO search never admits *more* users under a higher
//!   rate, and degraded-token counters only grow.
//! * **Accounting** — every degraded token in the metrics corresponds to a
//!   `Degraded` event in the deterministic fault log, and each one implies
//!   a full retry ladder of timeouts before it.

use longsight::faults::{FaultInjector, FaultKind, FaultProfile, RetryPolicy};
use longsight::model::ModelConfig;
use longsight::system::serving::{simulate, simulate_with_faults, WorkloadConfig};
use longsight::system::slo::max_users_under_slo;
use longsight::system::{LongSightConfig, LongSightSystem, ServingSystem};

fn short_workload() -> WorkloadConfig {
    WorkloadConfig {
        duration_s: 3.0,
        ..WorkloadConfig::long_context_chat()
    }
}

#[test]
fn disabled_faults_reproduce_the_fault_free_stack() {
    let model = ModelConfig::llama3_8b();

    // Step-cost path: a config with a disabled profile is the same system.
    let mut plain = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let mut gated = LongSightSystem::new(
        LongSightConfig::paper_default().with_faults(FaultProfile::disabled(), 99),
        model.clone(),
    );
    let a = plain.evaluate(8, 131_072).unwrap();
    let b = gated.evaluate(8, 131_072).unwrap();
    assert_eq!(a, b, "disabled fault profile changed the step report");

    // Serving path: simulate_with_faults(disabled) == simulate, empty log.
    let workload = short_workload();
    let baseline = simulate(&mut plain, &model, &workload);
    let (faulted, log) = simulate_with_faults(
        &mut gated,
        &model,
        &workload,
        &FaultInjector::disabled(),
        &RetryPolicy::serving_default(),
    );
    assert_eq!(baseline, faulted);
    assert!(log.is_empty());
    assert_eq!(faulted.retried_tokens, 0);
    assert_eq!(faulted.degraded_tokens, 0);
    assert_eq!(faulted.failed_requests, 0);
}

#[test]
fn slo_capacity_never_rises_with_the_fault_rate() {
    let model = ModelConfig::llama3_1b();
    let mut prev_users = usize::MAX;
    for rate in [0.0, 0.05, 0.2] {
        let mut sys = LongSightSystem::new(
            LongSightConfig::paper_default().with_faults(FaultProfile::scaled(rate), 11),
            model.clone(),
        );
        let cap = max_users_under_slo(&mut sys, 131_072, 50.0);
        assert!(
            cap.users <= prev_users,
            "rate {rate} admitted {} users, more than {prev_users} at a lower rate",
            cap.users
        );
        prev_users = cap.users;
    }
}

#[test]
fn degraded_tokens_match_logged_degradation_events() {
    let model = ModelConfig::llama3_8b();
    // Timeout-only profile with a high rate so retries actually exhaust.
    let profile = FaultProfile {
        timeout_rate: 0.6,
        ..FaultProfile::disabled()
    };
    let retry = RetryPolicy::serving_default();
    let inj = FaultInjector::new(profile, 7);
    let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let (metrics, log) = simulate_with_faults(&mut sys, &model, &short_workload(), &inj, &retry);

    let degraded_events = log.count_matching(|k| matches!(k, FaultKind::Degraded));
    let timeouts = log.count_matching(|k| matches!(k, FaultKind::Timeout { .. }));
    assert!(
        metrics.degraded_tokens > 0,
        "rate 0.6 should degrade tokens"
    );
    assert_eq!(
        metrics.degraded_tokens, degraded_events,
        "every degraded token must log exactly one Degraded event"
    );
    // A degraded token burned the full ladder: max_retries + 1 timeouts.
    assert!(
        timeouts >= metrics.degraded_tokens * (retry.max_retries as usize + 1),
        "degraded tokens imply a full timeout ladder each"
    );
    assert!(metrics.degraded_quality_delta > 0.0);
}

#[test]
fn faulted_runs_are_reproducible_under_a_seed() {
    let model = ModelConfig::llama3_8b();
    let run = |seed: u64| {
        let inj = FaultInjector::new(FaultProfile::severe(), seed);
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        simulate_with_faults(
            &mut sys,
            &model,
            &short_workload(),
            &inj,
            &RetryPolicy::serving_default(),
        )
    };
    let (m1, l1) = run(11);
    let (m2, l2) = run(11);
    assert_eq!(m1, m2, "same fault seed must reproduce identical metrics");
    assert_eq!(l1.to_text(), l2.to_text());

    let (m3, l3) = run(12);
    assert!(
        l3.to_text() != l1.to_text() || m3 != m1,
        "different fault seeds should produce a different timeline"
    );
}
