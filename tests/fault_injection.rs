//! End-to-end contracts of the fault-injection layer.
//!
//! * **Rate-0 identity** — a disabled injector must leave every number
//!   produced by the stack byte-identical to the fault-free path: the
//!   goldens under `results/` and the bit-identity promise of
//!   `longsight-exec` survive with faults compiled in but switched off.
//! * **Monotone degradation** — raising the fault rate can only cost
//!   capacity: the SLO search never admits *more* users under a higher
//!   rate, and degraded-token counters only grow.
//! * **Accounting** — every degraded token in the metrics corresponds to a
//!   `Degraded` event in the deterministic fault log, and each one implies
//!   a full retry ladder of timeouts before it.

use longsight::faults::{FaultInjector, FaultKind, FaultProfile, RetryPolicy};
use longsight::model::ModelConfig;
use longsight::obs::Recorder;
use longsight::system::serving::{
    simulate, simulate_observed, simulate_with_faults, WorkloadConfig,
};
use longsight::system::slo::max_users_under_slo;
use longsight::system::{LongSightConfig, LongSightSystem, LookaheadConfig, ServingSystem};

fn short_workload() -> WorkloadConfig {
    WorkloadConfig {
        duration_s: 3.0,
        ..WorkloadConfig::long_context_chat()
    }
}

#[test]
fn disabled_faults_reproduce_the_fault_free_stack() {
    let model = ModelConfig::llama3_8b();

    // Step-cost path: a config with a disabled profile is the same system.
    let mut plain = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let mut gated = LongSightSystem::new(
        LongSightConfig::paper_default().with_faults(FaultProfile::disabled(), 99),
        model.clone(),
    );
    let a = plain.evaluate(8, 131_072).unwrap();
    let b = gated.evaluate(8, 131_072).unwrap();
    assert_eq!(a, b, "disabled fault profile changed the step report");

    // Serving path: simulate_with_faults(disabled) == simulate, empty log.
    let workload = short_workload();
    let baseline = simulate(&mut plain, &model, &workload);
    let (faulted, log) = simulate_with_faults(
        &mut gated,
        &model,
        &workload,
        &FaultInjector::disabled(),
        &RetryPolicy::serving_default(),
    );
    assert_eq!(baseline, faulted);
    assert!(log.is_empty());
    assert_eq!(faulted.retried_tokens, 0);
    assert_eq!(faulted.degraded_tokens, 0);
    assert_eq!(faulted.failed_requests, 0);
}

#[test]
fn slo_capacity_never_rises_with_the_fault_rate() {
    let model = ModelConfig::llama3_1b();
    let mut prev_users = usize::MAX;
    for rate in [0.0, 0.05, 0.2] {
        let mut sys = LongSightSystem::new(
            LongSightConfig::paper_default().with_faults(FaultProfile::scaled(rate), 11),
            model.clone(),
        );
        let cap = max_users_under_slo(&mut sys, 131_072, 50.0);
        assert!(
            cap.users <= prev_users,
            "rate {rate} admitted {} users, more than {prev_users} at a lower rate",
            cap.users
        );
        prev_users = cap.users;
    }
}

#[test]
fn degraded_tokens_match_logged_degradation_events() {
    let model = ModelConfig::llama3_8b();
    // Timeout-only profile with a high rate so retries actually exhaust.
    let profile = FaultProfile {
        timeout_rate: 0.6,
        ..FaultProfile::disabled()
    };
    let retry = RetryPolicy::serving_default();
    let inj = FaultInjector::new(profile, 7);
    let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
    let (metrics, log) = simulate_with_faults(&mut sys, &model, &short_workload(), &inj, &retry);

    let degraded_events = log.count_matching(|k| matches!(k, FaultKind::Degraded));
    let timeouts = log.count_matching(|k| matches!(k, FaultKind::Timeout { .. }));
    assert!(
        metrics.degraded_tokens > 0,
        "rate 0.6 should degrade tokens"
    );
    assert_eq!(
        metrics.degraded_tokens, degraded_events,
        "every degraded token must log exactly one Degraded event"
    );
    // A degraded token burned the full ladder: max_retries + 1 timeouts.
    assert!(
        timeouts >= metrics.degraded_tokens * (retry.max_retries as usize + 1),
        "degraded tokens imply a full timeout ladder each"
    );
    assert!(metrics.degraded_quality_delta > 0.0);
}

#[test]
fn faulted_runs_are_reproducible_under_a_seed() {
    let model = ModelConfig::llama3_8b();
    let run = |seed: u64| {
        let inj = FaultInjector::new(FaultProfile::severe(), seed);
        let mut sys = LongSightSystem::new(LongSightConfig::paper_default(), model.clone());
        simulate_with_faults(
            &mut sys,
            &model,
            &short_workload(),
            &inj,
            &RetryPolicy::serving_default(),
        )
    };
    let (m1, l1) = run(11);
    let (m2, l2) = run(11);
    assert_eq!(m1, m2, "same fault seed must reproduce identical metrics");
    assert_eq!(l1.to_text(), l2.to_text());

    let (m3, l3) = run(12);
    assert!(
        l3.to_text() != l1.to_text() || m3 != m1,
        "different fault seeds should produce a different timeline"
    );
}

/// Lookahead with a zero stale-rate: every speculation miss below must come
/// from an injected fault voiding the in-flight slice.
fn void_only_lookahead() -> LookaheadConfig {
    LookaheadConfig {
        miss_rate: 0.0,
        ..LookaheadConfig::serving_default()
    }
}

#[test]
fn injected_faults_void_in_flight_slots_without_double_retry() {
    let model = ModelConfig::llama3_8b();
    let workload = short_workload();
    let retry = RetryPolicy::serving_default();
    let run = |lookahead: Option<LookaheadConfig>| {
        let mut cfg = LongSightConfig::paper_default();
        if let Some(la) = lookahead {
            cfg = cfg.with_lookahead(la);
        }
        let mut sys = LongSightSystem::new(cfg, model.clone());
        let inj = FaultInjector::new(FaultProfile::scaled(0.2), 11);
        simulate_with_faults(&mut sys, &model, &workload, &inj, &retry)
    };
    let (off_m, off_log) = run(None);
    let (on_m, on_log) = run(Some(void_only_lookahead()));

    // The fault voided slices: with the stale-rate at zero, every miss is a
    // voided in-flight slot, charged as a miss.
    assert!(
        on_m.spec_misses > 0,
        "rate 0.2 should void some in-flight slices"
    );
    assert_eq!(on_m.spec_denied, 0, "paper-default pool should not starve");

    // Never double-retried: the void draw lives on its own stream
    // coordinate, so every token runs the exact same retry ladder with
    // speculation on or off. Hit steps finish sooner and reorder the global
    // timeline, so compare the ladders as a multiset of log lines.
    let ladder = |log: &longsight::faults::FaultLog| {
        let text = log.to_text();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        lines.join("\n")
    };
    assert_eq!(ladder(&on_log), ladder(&off_log));
    assert_eq!(on_m.retried_tokens, off_m.retried_tokens);
    assert_eq!(on_m.degraded_tokens, off_m.degraded_tokens);
    assert_eq!(on_m.failed_requests, off_m.failed_requests);
}

#[test]
fn rate_zero_lookahead_is_byte_identical_across_reruns() {
    let model = ModelConfig::llama3_8b();
    let workload = short_workload();
    let run = || {
        let cfg =
            LongSightConfig::paper_default().with_lookahead(LookaheadConfig::serving_default());
        let mut sys = LongSightSystem::new(cfg, model.clone());
        let mut rec = Recorder::enabled();
        let (m, log) = simulate_observed(&mut sys, &model, &workload, None, &mut rec, None);
        (
            m,
            log.to_text(),
            rec.chrome_trace_json(),
            rec.metrics_json(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "fault-free lookahead reruns diverged");
    assert!(a.1.is_empty(), "no injector, no fault log");
}

#[test]
fn fault_log_and_instants_agree_with_speculation_on() {
    let model = ModelConfig::llama3_8b();
    let cfg = LongSightConfig::paper_default().with_lookahead(void_only_lookahead());
    let mut sys = LongSightSystem::new(cfg, model.clone());
    let mut rec = Recorder::enabled();
    let inj = FaultInjector::new(FaultProfile::scaled(0.2), 11);
    let retry = RetryPolicy::serving_default();
    let (m, log) = simulate_observed(
        &mut sys,
        &model,
        &short_workload(),
        Some((&inj, &retry)),
        &mut rec,
        None,
    );
    assert!(!log.is_empty(), "rate 0.2 should fire events");
    assert_eq!(
        rec.instants_matching("fault."),
        log.len(),
        "speculation must not add or swallow fault instants"
    );
    assert_eq!(
        rec.instants_matching("spec.miss"),
        m.spec_misses,
        "every voided slice must surface as exactly one spec.miss instant"
    );
}
