//! End-to-end algorithm quality: the paper's central claims, verified on the
//! induction-head model with a real forward pass.
//!
//! * Hybrid dense–sparse attention tracks dense perplexity (Fig 3b),
//! * sliding-window attention alone loses the long-range motifs (Fig 10's
//!   quality gap),
//! * SCF filtering prunes the sparse region while staying within the
//!   perplexity budget,
//! * ITQ improves the achievable filter ratio at matched quality (Fig 3c).

use longsight_core::{HybridConfig, ItqConfig, LongSightBackend, RotationTable, ThresholdTable};
use longsight_model::{
    corpus, perplexity, DenseBackend, InductionParams, Model, ModelConfig, ModelWeights,
    SlidingWindowBackend,
};
use longsight_tensor::SimRng;

const CTX: usize = 1024;
const WINDOW: usize = 256;
const SINKS: usize = 16;
const SKIP: usize = 64;

fn setup() -> (Model, corpus::Corpus) {
    let cfg = ModelConfig::tiny();
    let mut rng = SimRng::seed_from(2025);
    let model = Model::new(ModelWeights::induction(
        &cfg,
        &InductionParams::default(),
        &mut rng,
    ));
    let text = corpus::generate(&corpus::CorpusConfig::long_book(cfg.vocab), CTX, &mut rng);
    (model, text)
}

#[test]
fn hybrid_tracks_dense_while_window_only_degrades() {
    let (model, text) = setup();
    let cfg = model.config().clone();

    let dense = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), SKIP);
    let mut window_only = SlidingWindowBackend::new(WINDOW, SINKS);
    let windowed = perplexity::evaluate(&model, &text, &mut window_only, SKIP);
    let mut hybrid = LongSightBackend::new(
        HybridConfig {
            window: WINDOW,
            sinks: SINKS,
            top_k: 128,
        },
        ThresholdTable::zeros(cfg.layers, cfg.kv_heads),
        RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
    );
    let hybrid_r = perplexity::evaluate(&model, &text, &mut hybrid, SKIP);

    // Hybrid stays within a few percent of dense.
    let hybrid_inc = hybrid_r.relative_increase_over(&dense);
    assert!(
        hybrid_inc < 0.05,
        "hybrid ppl increase {hybrid_inc:.3} exceeds the 5% budget \
         (dense {:.2}, hybrid {:.2})",
        dense.perplexity,
        hybrid_r.perplexity
    );
    // Window-only is clearly worse than hybrid: it cannot retrieve
    // long-range motif occurrences.
    let window_inc = windowed.relative_increase_over(&dense);
    assert!(
        window_inc > 2.0 * hybrid_inc.max(0.005),
        "window-only increase {window_inc:.3} should far exceed hybrid {hybrid_inc:.3}"
    );

    // And the hybrid run moved far fewer *Value* vectors than dense: only
    // the window, sinks, and k retrieved values reach the softmax (the data
    // movement the offload saves, even before SCF thresholds are raised).
    let s = hybrid.stats();
    let value_ratio = s.dense_kv as f64 / (s.window_accessed + s.retrieved) as f64;
    assert!(
        value_ratio > 1.2,
        "hybrid should load several times fewer values (got {value_ratio:.2}x)"
    );
}

#[test]
fn scf_thresholds_prune_within_quality_budget() {
    let (model, text) = setup();
    let cfg = model.config().clone();
    let dense = perplexity::evaluate(&model, &text, &mut DenseBackend::new(), SKIP);

    // A moderate uniform threshold (just over half the dims agreeing).
    let threshold = (cfg.head_dim as u32) / 2 + 2;
    let mut filtered = LongSightBackend::new(
        HybridConfig {
            window: WINDOW,
            sinks: SINKS,
            top_k: 128,
        },
        ThresholdTable::uniform(cfg.layers, cfg.kv_heads, threshold),
        RotationTable::identity(cfg.layers, cfg.kv_heads, cfg.head_dim),
    );
    let r = perplexity::evaluate(&model, &text, &mut filtered, SKIP);
    let stats = filtered.stats();
    assert!(
        stats.survival_rate() < 0.9,
        "threshold {threshold} should filter something (survival {:.2})",
        stats.survival_rate()
    );
    // Quality: not catastrophically degraded (the tuner's job is to pick the
    // exact operating point; here we check the mechanism is sound).
    let inc = r.relative_increase_over(&dense);
    assert!(
        inc < 0.5,
        "moderate SCF filtering should not destroy the model (increase {inc:.3})"
    );
}

#[test]
fn itq_improves_filter_ratio_at_matched_quality() {
    // Evaluated on the long-context trace generator (LLaMA-like key
    // geometry: clusters + sparse DC), the vehicle for the paper's Fig 3c —
    // see DESIGN.md for why the full-model path exhibits only part of the
    // anisotropy pathology.
    use longsight_core::{trace_eval, ItqRotation};
    use longsight_model::tracegen::{generate_head_trace, TraceConfig};
    use longsight_tensor::{vecops, Matrix};

    let mut rng = SimRng::seed_from(7);
    let d = 128;
    let trace = generate_head_trace(&TraceConfig::llama_like(d, 16_384), &mut rng);

    // Train ITQ on the first 1024 keys (normalized), as the paper trains on
    // a 1K-token prefix.
    let n_train = 1024;
    let mut data = Vec::new();
    for i in 0..n_train {
        let k = trace.keys.get(i);
        let norm = vecops::l2_norm(k);
        data.extend(k.iter().map(|x| x / norm.max(1e-9)));
    }
    let itq_rot = ItqRotation::train(
        &Matrix::from_vec(n_train, d, data),
        &ItqConfig {
            iterations: 30,
            seed: 9,
        },
    );
    let raw_rot = ItqRotation::identity(d);

    let hybrid_cfg = HybridConfig {
        window: 1024,
        sinks: 16,
        top_k: 1024,
    };
    let best_ratio = |rot: &ItqRotation| -> f64 {
        let mut best = 0.0f64;
        for th in (0..=d as u32).step_by(4) {
            let q = trace_eval::evaluate_trace(&trace, rot, &hybrid_cfg, th);
            if q.output_rel_err <= 0.05 {
                best = best.max(q.stats.filter_ratio_nonwindow());
            } else {
                break;
            }
        }
        best
    };

    let raw = best_ratio(&raw_rot);
    let itq = best_ratio(&itq_rot);
    assert!(
        itq > 1.5 * raw,
        "ITQ must substantially improve the achievable filter ratio at matched \
         quality: raw {raw:.2}x vs itq {itq:.2}x"
    );
}
