//! Fleet time-series telemetry contract — the windowed sampler, the SLO
//! burn-rate engine, and the export formats, pinned end to end.
//!
//! Four promises:
//!
//! 1. **Bit-identical exports.** The TSV and JSON timeseries exports of a
//!    traced 2-replica crash run are byte-identical at 1, 4, and hardware
//!    worker threads, and across same-seed reruns — the sampler is driven
//!    by simulated time only.
//! 2. **The crash is visible.** On the seed-11 crash run the breaker
//!    series trips to open (2) and recovers below open, the replica
//!    up/down gauge drops and returns, and the burn-rate engine fires at
//!    least one `slo.burn` alert window with matching trace instants.
//! 3. **Telemetry is free when off.** The same run without timeseries
//!    yields a `ServeMetrics`/`FleetReport` equal to the telemetry run
//!    modulo the `slo_burn` summary, and report text that differs only by
//!    the burn block.
//! 4. **Exports round-trip.** `Export::parse` reads both the TSV and the
//!    JSON form back into the same columns the sampler produced.

use longsight::exec;
use longsight::faults::ReplicaFaultProfile;
use longsight::model::ModelConfig;
use longsight::obs::timeseries::Export;
use longsight::obs::{BurnConfig, Recorder};
use longsight::sched::{BreakerConfig, FleetReport, RouterPolicy, SchedPolicy, SloMix};
use longsight::system::serving::{
    simulate_fleet_faulty, FleetFaultOptions, SchedOptions, ServeMetrics, WorkloadConfig,
};
use longsight::system::{LongSightConfig, LongSightSystem, ServingSystem};
use std::sync::Mutex;

/// The worker-count override is process-global, so tests that sweep it must
/// not interleave.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 4];
    if !counts.contains(&hw) {
        counts.push(hw);
    }
    counts
}

fn across_thread_counts<R>(f: impl Fn() -> R) -> Vec<(usize, R)> {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = thread_counts()
        .into_iter()
        .map(|t| {
            exec::set_thread_count(t);
            (t, f())
        })
        .collect();
    exec::set_thread_count(0);
    out
}

/// The CLI defaults for `--sched slo-aware` — the same operating point the
/// `results/fleet_timeseries.txt` golden is rendered from.
fn opts() -> SchedOptions {
    SchedOptions {
        policy: SchedPolicy::SloAware,
        mix: SloMix::mixed(),
        page_tokens: 1024,
        prefill_chunk_tokens: 8192,
        prefill_slots: 1,
        hbm_watermark: 0.9,
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_s: 10.0,
        context_tokens: (16_384, 32_768),
        output_tokens: (32, 128),
        duration_s: 6.0,
        seed: 11,
    }
}

fn fleet_of(n: usize) -> Vec<Box<dyn ServingSystem>> {
    let model = ModelConfig::llama3_1b();
    (0..n)
        .map(|_| {
            Box::new(LongSightSystem::new(
                LongSightConfig::paper_default(),
                model.clone(),
            )) as Box<dyn ServingSystem>
        })
        .collect()
}

/// Seed 11 gives a single-replica crash plus brownouts at this rate — the
/// regime the checked-in `results/fleet_timeseries.txt` golden renders.
fn crashy() -> FleetFaultOptions {
    FleetFaultOptions {
        profile: ReplicaFaultProfile::scaled(0.1),
        fault_seed: 11,
        breaker: Some(BreakerConfig::serving_default()),
        shed_queue_cap: None,
    }
}

struct TracedRun {
    metrics: ServeMetrics,
    report: FleetReport,
    tsv: String,
    json: String,
    trace: String,
}

fn run_crashy(timeseries: bool) -> TracedRun {
    let model = ModelConfig::llama3_1b();
    let mut fleet = fleet_of(2);
    let mut rec = Recorder::enabled();
    if timeseries {
        rec.enable_timeseries(250e6, BurnConfig::default());
    }
    let (metrics, report) = simulate_fleet_faulty(
        &mut fleet,
        &model,
        &workload(),
        &opts(),
        RouterPolicy::JsqSpillover,
        &crashy(),
        &mut rec,
    );
    TracedRun {
        metrics,
        report,
        tsv: rec.timeseries.to_tsv(),
        json: rec.timeseries.to_json(),
        trace: rec.chrome_trace_json(),
    }
}

fn column<'a>(export: &'a Export, name: &str) -> &'a [Option<f64>] {
    &export
        .columns
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("export is missing series '{name}'"))
        .1
}

#[test]
fn exports_are_bit_identical_across_thread_counts_and_reruns() {
    let runs = across_thread_counts(|| {
        let a = run_crashy(true);
        let b = run_crashy(true);
        assert_eq!(a.tsv, b.tsv, "same-seed rerun must export identical TSV");
        assert_eq!(a.json, b.json, "same-seed rerun must export identical JSON");
        (a.tsv, a.json)
    });
    let (_, (tsv0, json0)) = &runs[0];
    for (threads, (tsv, json)) in &runs[1..] {
        assert_eq!(tsv, tsv0, "TSV export differs at {threads} threads");
        assert_eq!(json, json0, "JSON export differs at {threads} threads");
    }
}

#[test]
fn seed11_crash_run_shows_breaker_trip_recovery_and_burn_alerts() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = run_crashy(true);
    let export = Export::parse(&run.tsv).expect("own TSV export must parse");

    // The breaker on the crashed replica trips to open (2) and comes back
    // below open after recovery; the up/down gauge mirrors it.
    let tripped: Vec<usize> = (0..run.report.replicas.len())
        .filter(|r| column(&export, &format!("r{r}.breaker")).contains(&Some(2.0)))
        .collect();
    assert!(!tripped.is_empty(), "no breaker series ever tripped open");
    for r in &tripped {
        let breaker = column(&export, &format!("r{r}.breaker"));
        let open_at = breaker.iter().position(|v| *v == Some(2.0)).expect("trip");
        assert!(
            breaker[open_at..]
                .iter()
                .any(|v| matches!(v, Some(l) if *l < 2.0)),
            "r{r}.breaker never recovered below open after tripping"
        );
        let up = column(&export, &format!("r{r}.up"));
        assert!(up.contains(&Some(0.0)), "r{r}.up never recorded the crash");
        let down_at = up.iter().position(|v| *v == Some(0.0)).expect("down");
        assert!(
            up[down_at..].contains(&Some(1.0)),
            "r{r}.up never recorded the recovery"
        );
    }

    // The burn-rate engine fired: alert windows in the export, a summary
    // on both reports, and matching trace instants.
    let alerts = column(&export, "slo.burn.alert")
        .iter()
        .filter(|v| **v == Some(1.0))
        .count();
    assert!(alerts >= 1, "expected at least one slo.burn alert window");
    let burn = run.metrics.slo_burn.as_ref().expect("metrics burn summary");
    assert_eq!(burn.alert_windows as usize, alerts);
    assert!(burn.misses > 0 && burn.completions >= burn.misses);
    assert!(burn.consumed > 1.0, "the crash run must exhaust the budget");
    assert_eq!(run.report.slo_burn, run.metrics.slo_burn);
    assert!(
        run.trace.contains("\"slo.burn\""),
        "trace must carry slo.burn instants"
    );
    assert!(
        run.metrics.to_text().contains("slo burn alerts:"),
        "text report must carry the burn block"
    );
}

#[test]
fn telemetry_off_changes_nothing_but_the_burn_summary() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let on = run_crashy(true);
    let off = run_crashy(false);
    assert!(off.metrics.slo_burn.is_none());
    assert!(off.report.slo_burn.is_none());
    assert_eq!(off.tsv, "", "disabled sampler must export nothing");

    let mut stripped_m = on.metrics.clone();
    stripped_m.slo_burn = None;
    assert_eq!(
        off.metrics, stripped_m,
        "telemetry must not perturb the serving metrics"
    );
    let mut stripped_r = on.report.clone();
    stripped_r.slo_burn = None;
    assert_eq!(
        off.report, stripped_r,
        "telemetry must not perturb the fleet report"
    );

    // Text reports differ only by the burn block.
    let burn_block = on
        .metrics
        .slo_burn
        .as_ref()
        .expect("burn summary")
        .to_text();
    assert_eq!(
        on.metrics.to_text(),
        format!("{}{burn_block}", off.metrics.to_text()),
        "metrics text must be the telemetry-off text plus the burn block"
    );

    // The round-trip JSON drops and restores the optional summary.
    let back = ServeMetrics::from_json(&on.metrics.to_json()).expect("metrics JSON round-trip");
    assert_eq!(back, on.metrics);
    let back_off =
        ServeMetrics::from_json(&off.metrics.to_json()).expect("metrics JSON round-trip");
    assert_eq!(back_off, off.metrics);
}

#[test]
fn tsv_and_json_exports_parse_to_the_same_columns() {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run = run_crashy(true);
    let from_tsv = Export::parse(&run.tsv).expect("TSV parse");
    let from_json = Export::parse(&run.json).expect("JSON parse");
    assert_eq!(from_tsv.window_ns, from_json.window_ns);
    assert_eq!(from_tsv.columns, from_json.columns);
    assert!(from_tsv.windows() > 0);
    assert!(from_tsv
        .columns
        .iter()
        .all(|(_, v)| v.len() == from_tsv.windows()));
}
